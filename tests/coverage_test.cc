// Tests for the coverage engine (negative-unit cache semantics, §4.1.5) and
// the greedy set-cover solver (§4.1.6).

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "core/set_cover.h"

namespace tj {
namespace {

/// Fixture building a tiny controlled transformation store.
class CoverageTest : public ::testing::Test {
 protected:
  TransformationId Add(std::vector<Unit> units) {
    std::vector<UnitId> ids;
    for (const auto& u : units) ids.push_back(units_.Intern(u));
    return store_.Intern(Transformation(std::move(ids))).first;
  }

  CoverageIndex Compute(const std::vector<ExamplePair>& rows,
                        bool neg_cache = true) {
    DiscoveryOptions options;
    options.enable_neg_cache = neg_cache;
    stats_ = DiscoveryStats();
    return ComputeCoverage(store_, units_, rows, options, &stats_);
  }

  UnitInterner units_;
  TransformationStore store_;
  DiscoveryStats stats_;
};

TEST_F(CoverageTest, CountsExactCoverage) {
  const TransformationId split = Add({Unit::MakeSplit(',', 0)});
  const TransformationId lit = Add({Unit::MakeLiteral("beta")});
  const std::vector<ExamplePair> rows = {
      {"alpha,1", "alpha"}, {"beta,2", "beta"}, {"gamma,3", "gamma"}};
  const CoverageIndex index = Compute(rows);
  EXPECT_EQ(index.Count(split), 3u);
  EXPECT_EQ(index.Count(lit), 1u);
  EXPECT_EQ(index.RowsOf(lit)[0], 1u);
}

TEST_F(CoverageTest, RowsAreAscendingWithinTransformation) {
  const TransformationId split = Add({Unit::MakeSplit('|', 1)});
  const std::vector<ExamplePair> rows = {
      {"a|x", "x"}, {"b|y", "y"}, {"c|z", "z"}};
  const CoverageIndex index = Compute(rows);
  const auto covered = index.RowsOf(split);
  ASSERT_EQ(covered.size(), 3u);
  EXPECT_TRUE(covered[0] < covered[1] && covered[1] < covered[2]);
}

TEST_F(CoverageTest, CacheOnAndOffAgree) {
  // Property: the negative-unit cache is a pure optimization. The last two
  // transformations share a failing unit so the cache actually fires.
  Add({Unit::MakeSplit(',', 0)});
  Add({Unit::MakeSubstr(0, 3)});
  Add({Unit::MakeLiteral("xy"), Unit::MakeSplit(',', 1)});
  Add({Unit::MakeSplitSubstr(',', 1, 0, 2)});
  Add({Unit::MakeSplit('#', 7)});
  Add({Unit::MakeSplit('#', 7), Unit::MakeLiteral("z")});
  const std::vector<ExamplePair> rows = {
      {"abc,de", "abc"}, {"xy,zw", "xyzw"}, {"q,r", "q"}, {"zzz", "zzz"}};
  const CoverageIndex with_cache = Compute(rows, true);
  const uint64_t hits = stats_.cache_hits;
  const CoverageIndex without_cache = Compute(rows, false);
  EXPECT_EQ(stats_.cache_hits, 0u);
  ASSERT_EQ(with_cache.num_transformations(),
            without_cache.num_transformations());
  for (TransformationId t = 0; t < with_cache.num_transformations(); ++t) {
    EXPECT_EQ(with_cache.Count(t), without_cache.Count(t));
  }
  EXPECT_GT(hits, 0u);  // the cache actually fired on this workload
}

TEST_F(CoverageTest, CacheHitsSkipKnownBadUnits) {
  // Two transformations sharing a failing unit: the second try must be a
  // cache hit.
  const UnitId bad = units_.Intern(Unit::MakeSplit('#', 5));
  store_.Intern(Transformation({bad}));
  store_.Intern(Transformation({bad, units_.Intern(Unit::MakeLiteral("x"))}));
  const std::vector<ExamplePair> rows = {{"abc", "abc"}};
  Compute(rows);
  EXPECT_EQ(stats_.cache_hits, 1u);
  EXPECT_EQ(stats_.full_evaluations, 1u);
}

TEST_F(CoverageTest, UnitOutputMustMatchAtOffsetNotJustAnywhere) {
  // Both unit outputs occur in the target, but in the wrong order.
  Add({Unit::MakeSplit(',', 1), Unit::MakeSplit(',', 0)});
  const std::vector<ExamplePair> rows = {{"ab,cd", "abcd"}};
  const CoverageIndex index = Compute(rows);
  EXPECT_EQ(index.Count(0), 0u);
}

TEST_F(CoverageTest, EmptyStoreYieldsEmptyIndex) {
  const CoverageIndex index = Compute({{"a", "a"}});
  EXPECT_EQ(index.num_transformations(), 0u);
  EXPECT_EQ(index.TotalPairs(), 0u);
}

// ---- Set cover (indexes built through ComputeCoverage over crafted rows:
// a Literal transformation covers exactly the rows with that target) ----

TEST(SetCover, GreedyPicksLargestFirst) {
  UnitInterner units;
  TransformationStore store;
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("A"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("B"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeSplit('-', 1))}));
  const std::vector<ExamplePair> rows = {
      {"x-A", "A"}, {"y-A", "A"}, {"z-A", "A"}, {"w-B", "B"}};
  DiscoveryOptions options;
  DiscoveryStats stats;
  const CoverageIndex index =
      ComputeCoverage(store, units, rows, options, &stats);
  // t2 (Split) covers all 4; t0 covers 3; t1 covers 1.
  const SetCoverResult result =
      GreedySetCover(index, rows.size(), SetCoverOptions{});
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0].id, 2u);
  EXPECT_EQ(result.covered_rows, 4u);
}

TEST(SetCover, SelectsMultipleSetsWhenNeeded) {
  UnitInterner units;
  TransformationStore store;
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("A"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("B"))}));
  const std::vector<ExamplePair> rows = {
      {"1", "A"}, {"2", "A"}, {"3", "B"}};
  DiscoveryOptions options;
  DiscoveryStats stats;
  const CoverageIndex index =
      ComputeCoverage(store, units, rows, options, &stats);
  const SetCoverResult result =
      GreedySetCover(index, rows.size(), SetCoverOptions{});
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_EQ(result.selected[0].id, 0u);  // larger set first
  EXPECT_EQ(result.marginal_gains[0], 2u);
  EXPECT_EQ(result.marginal_gains[1], 1u);
  EXPECT_EQ(result.covered_rows, 3u);
}

TEST(SetCover, MinSupportExcludesRareSets) {
  UnitInterner units;
  TransformationStore store;
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("A"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("B"))}));
  const std::vector<ExamplePair> rows = {
      {"1", "A"}, {"2", "A"}, {"3", "B"}};
  DiscoveryOptions options;
  DiscoveryStats stats;
  const CoverageIndex index =
      ComputeCoverage(store, units, rows, options, &stats);
  SetCoverOptions cover_options;
  cover_options.min_support = 2;
  const SetCoverResult result =
      GreedySetCover(index, rows.size(), cover_options);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0].id, 0u);
  EXPECT_EQ(result.covered_rows, 2u);  // row 2 stays uncovered
}

TEST(SetCover, MaxSetsBoundsSelection) {
  UnitInterner units;
  TransformationStore store;
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("A"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("B"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("C"))}));
  const std::vector<ExamplePair> rows = {{"1", "A"}, {"2", "B"}, {"3", "C"}};
  DiscoveryOptions options;
  DiscoveryStats stats;
  const CoverageIndex index =
      ComputeCoverage(store, units, rows, options, &stats);
  SetCoverOptions cover_options;
  cover_options.max_sets = 2;
  const SetCoverResult result =
      GreedySetCover(index, rows.size(), cover_options);
  EXPECT_EQ(result.selected.size(), 2u);
}

TEST(TopK, OrderedByCoverageThenId) {
  UnitInterner units;
  TransformationStore store;
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("B"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeLiteral("A"))}));
  store.Intern(Transformation({units.Intern(Unit::MakeSplit('-', 0))}));
  const std::vector<ExamplePair> rows = {
      {"A-1", "A"}, {"A-2", "A"}, {"B-1", "B"}, {"B-2", "B"}};
  DiscoveryOptions options;
  DiscoveryStats stats;
  const CoverageIndex index =
      ComputeCoverage(store, units, rows, options, &stats);
  const auto top = TopKByCoverage(index, 10, 1);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 2u);  // Split covers 4
  EXPECT_EQ(top[0].coverage, 4u);
  // Literal('B') and Literal('A') both cover 2: lower id first.
  EXPECT_EQ(top[1].id, 0u);
  EXPECT_EQ(top[2].id, 1u);
}

}  // namespace
}  // namespace tj
