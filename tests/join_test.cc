// End-to-end join engine tests (paper §4.2, §6.5).

#include <gtest/gtest.h>

#include "datagen/figure1.h"
#include "datagen/synth.h"
#include "join/join_engine.h"

namespace tj {
namespace {

TEST(JoinEngine, Figure1PhonesJoinPerfectlyWithGoldenLearning) {
  // "Nascimento, Mario A" needs its own 3-placeholder rule that covers only
  // one row, so the support threshold must admit singleton rules here.
  const TablePair pair = Figure1NamePhonePair();
  JoinOptions options;
  options.matching = MatchingMode::kGolden;
  options.min_join_support = 0.15;  // ceil(0.15 * 6) = 1 supporting row
  const JoinResult result = TransformJoin(pair, options);
  EXPECT_DOUBLE_EQ(result.metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.recall, 1.0);
  EXPECT_FALSE(result.applied_transformations.empty());
}

TEST(JoinEngine, SupportThresholdTradesRecallForGenerality) {
  // With support >= 2 rows, the middle-initial row stays unjoined (5/6).
  const TablePair pair = Figure1NamePhonePair();
  JoinOptions options;
  options.matching = MatchingMode::kGolden;
  options.min_join_support = 0.3;  // ceil(0.3 * 6) = 2 supporting rows
  const JoinResult result = TransformJoin(pair, options);
  EXPECT_DOUBLE_EQ(result.metrics.precision, 1.0);
  EXPECT_NEAR(result.metrics.recall, 5.0 / 6.0, 1e-9);
}

TEST(JoinEngine, Figure1PhonesJoinWithAutomaticMatching) {
  const TablePair pair = Figure1NamePhonePair();
  JoinOptions options;
  options.matching = MatchingMode::kNgram;
  options.min_join_support = 0.3;
  const JoinResult result = TransformJoin(pair, options);
  EXPECT_GE(result.metrics.f1, 0.9);
}

TEST(JoinEngine, SynthJoinRecoversGoldenPairs) {
  const SynthDataset ds = GenerateSynth(SynthN(60, 23));
  JoinOptions options;
  options.matching = MatchingMode::kGolden;
  options.min_join_support = 0.05;
  const JoinResult result = TransformJoin(ds.pair, options);
  EXPECT_GE(result.metrics.precision, 0.95);
  EXPECT_GE(result.metrics.recall, 0.9);
}

TEST(JoinEngine, SupportThresholdLimitsAppliedTransformations) {
  const SynthDataset ds = GenerateSynth(SynthN(60, 29));
  JoinOptions strict;
  strict.matching = MatchingMode::kGolden;
  strict.min_join_support = 0.9;  // no single rule covers 90% of 3-rule data
  const JoinResult result = TransformJoin(ds.pair, strict);
  EXPECT_TRUE(result.applied_transformations.empty());
  EXPECT_TRUE(result.joined.empty());
}

TEST(JoinEngine, SamplingBoundsLearningPairs) {
  const SynthDataset ds = GenerateSynth(SynthN(80, 31));
  JoinOptions options;
  options.matching = MatchingMode::kGolden;
  options.sample_pairs = 25;
  options.min_join_support = 0.05;
  const JoinResult result = TransformJoin(ds.pair, options);
  EXPECT_EQ(result.learning_pairs, 25u);
  // Sampling should not destroy join quality (§5.3).
  EXPECT_GE(result.metrics.f1, 0.8);
}

TEST(ApplyAndEquiJoin, ManyToManySemantics) {
  Column source("s", {"a|1", "b|2"});
  Column target("t", {"a", "a", "b"});
  UnitInterner units;
  TransformationStore store;
  const auto [id, fresh] =
      store.Intern(Transformation({units.Intern(Unit::MakeSplit('|', 0))}));
  ASSERT_TRUE(fresh);
  const std::vector<RowPair> joined =
      ApplyAndEquiJoin(source, target, store, units, {id});
  // Source row 0 joins both "a" rows; row 1 joins the "b" row.
  EXPECT_EQ(joined.size(), 3u);
}

TEST(ApplyAndEquiJoin, NoTransformationsNoPairs) {
  Column source("s", {"a"});
  Column target("t", {"a"});
  UnitInterner units;
  TransformationStore store;
  EXPECT_TRUE(ApplyAndEquiJoin(source, target, store, units, {}).empty());
}

}  // namespace
}  // namespace tj
