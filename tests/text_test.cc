// Tests for the text kernel: LCP table, tokenizer, n-grams, edit distance,
// character classes.

#include <gtest/gtest.h>

#include <string>

#include "text/char_class.h"
#include "text/edit_distance.h"
#include "text/lcp.h"
#include "text/ngram.h"
#include "text/tokenizer.h"

namespace tj {
namespace {

TEST(LcpTable, BasicLcpValues) {
  const LcpTable t = LcpTable::Build("abcab", "cabx");
  // source[3..] = "ab", target[1..] = "abx": lcp = 2.
  EXPECT_EQ(t.Lcp(3, 1), 2);
  // source[2..] = "cab", target[0..] = "cabx": lcp = 3.
  EXPECT_EQ(t.Lcp(2, 0), 3);
  EXPECT_EQ(t.Lcp(0, 0), 0);  // 'a' vs 'c'
}

TEST(LcpTable, LongestMatchAtEachTargetPosition) {
  const LcpTable t = LcpTable::Build("bowling, michael",
                                     "michael.bowling");
  EXPECT_EQ(t.LongestMatchAt(0), 7);  // "michael"
  EXPECT_EQ(t.LongestMatchAt(7), 0);  // '.' absent from source
  EXPECT_EQ(t.LongestMatchAt(8), 7);  // "bowling"
}

TEST(LcpTable, MatchPositionsFindsAllOccurrences) {
  const LcpTable t = LcpTable::Build("abab", "ab");
  std::vector<uint32_t> positions;
  t.MatchPositions(0, 2, &positions);
  EXPECT_EQ(positions, (std::vector<uint32_t>{0, 2}));
}

TEST(LcpTable, EmptyStringsAreSafe) {
  const LcpTable t = LcpTable::Build("", "abc");
  EXPECT_EQ(t.LongestMatchAt(0), 0);
  const LcpTable t2 = LcpTable::Build("abc", "");
  EXPECT_EQ(t2.target_length(), 0u);
}

TEST(LcpTable, OutOfRangeQueriesReturnZero) {
  const LcpTable t = LcpTable::Build("ab", "ab");
  EXPECT_EQ(t.Lcp(5, 0), 0);
  EXPECT_EQ(t.Lcp(0, 5), 0);
  EXPECT_EQ(t.LongestMatchAt(10), 0);
}

TEST(Tokenizer, SplitByCharKeepsEmptyPieces) {
  const auto pieces = SplitByChar("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(Tokenizer, SplitOfEmptyStringIsOneEmptyPiece) {
  const auto pieces = SplitByChar("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(Tokenizer, NthSplitPieceMatchesSplitByChar) {
  const std::string input = "x|yy||z";
  const auto pieces = SplitByChar(input, '|');
  for (size_t i = 0; i < pieces.size(); ++i) {
    EXPECT_EQ(NthSplitPiece(input, '|', static_cast<int32_t>(i)), pieces[i]);
  }
  EXPECT_FALSE(NthSplitPiece(input, '|', 4).has_value());
  EXPECT_FALSE(NthSplitPiece(input, '|', -1).has_value());
}

TEST(Tokenizer, CountSplitPieces) {
  EXPECT_EQ(CountSplitPieces("a,b,c", ','), 3u);
  EXPECT_EQ(CountSplitPieces("abc", ','), 1u);
  EXPECT_EQ(CountSplitPieces(",", ','), 2u);
}

TEST(Tokenizer, TokenizeOnTwoCharsAnnotatesBounds) {
  const auto tokens = TokenizeOnTwoChars("a<x>b", '<', '>');
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].prev, 0);
  EXPECT_EQ(tokens[0].next, '<');
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[1].prev, '<');
  EXPECT_EQ(tokens[1].next, '>');
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[2].prev, '>');
  EXPECT_EQ(tokens[2].next, 0);
}

TEST(Tokenizer, WordTokensLowercasesAndSplitsOnNonAlnum) {
  const auto tokens = WordTokens("Hello, World-42!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
}

TEST(Ngram, ForEachNgramYieldsAllWindows) {
  std::vector<std::string> grams;
  ForEachNgram("abcd", 2, [&](std::string_view g) { grams.emplace_back(g); });
  EXPECT_EQ(grams, (std::vector<std::string>{"ab", "bc", "cd"}));
}

TEST(Ngram, ForEachNgramDegenerateCases) {
  int count = 0;
  ForEachNgram("ab", 3, [&](std::string_view) { ++count; });
  ForEachNgram("ab", 0, [&](std::string_view) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Ngram, DistinctNgramsDeduplicates) {
  const auto grams = DistinctNgrams("aaaa", 2);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "aa");
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(EditDistance, Symmetric) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(EditSimilarity, NormalizedToUnitInterval) {
  EXPECT_DOUBLE_EQ(EditSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-9);
}

TEST(CharClass, SeparatorSetIsSpacesAndPunctuation) {
  EXPECT_TRUE(IsSeparatorChar(' '));
  EXPECT_TRUE(IsSeparatorChar(','));
  EXPECT_TRUE(IsSeparatorChar('-'));
  EXPECT_TRUE(IsSeparatorChar('.'));
  EXPECT_FALSE(IsSeparatorChar('a'));
  EXPECT_FALSE(IsSeparatorChar('7'));
}

TEST(CharClass, AlnumClasses) {
  EXPECT_TRUE(IsAlnumChar('a'));
  EXPECT_TRUE(IsAlnumChar('Z'));
  EXPECT_TRUE(IsAlnumChar('0'));
  EXPECT_FALSE(IsAlnumChar('-'));
  EXPECT_TRUE(IsDigitChar('5'));
  EXPECT_FALSE(IsDigitChar('a'));
}

}  // namespace
}  // namespace tj
