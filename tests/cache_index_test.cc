// Tests for the cross-pair index cache (index/index_cache.h): unit tests
// for the single-flight build race, fingerprint-keyed invalidation, and
// LRU budget eviction order, plus the PR's acceptance property — random
// add/remove/update maintenance sequences where discovery with a shared,
// mutation-spanning cache stays byte-identical to cache-disabled runs at
// thread counts 1/2/4/8 on heap and spilled catalogs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "corpus/catalog.h"
#include "corpus/corpus_discovery.h"
#include "datagen/corpus.h"
#include "index/index_cache.h"
#include "index/inverted_index.h"
#include "table/table.h"

namespace tj {
namespace {

IndexCacheKey MakeKey(uint64_t fingerprint, uint32_t column = 0) {
  IndexCacheKey key;
  key.fingerprint = fingerprint;
  key.column = column;
  key.n0 = 2;
  key.nmax = 4;
  key.lowercase = false;
  return key;
}

Column SmallColumn(const char* name) {
  return Column(name, {"alpha", "beta", "gamma", "delta"});
}

TEST(IndexCache, SingleFlightRunsExactlyOneBuild) {
  IndexCache cache;  // unlimited
  const IndexCacheKey key = MakeKey(/*fingerprint=*/7);
  std::atomic<int> builds{0};

  constexpr size_t kRequests = 8;
  std::vector<std::shared_ptr<const NgramInvertedIndex>> got(kRequests);
  ThreadPool pool(4);
  pool.ParallelFor(kRequests, kRequests,
                   [&](int /*worker*/, size_t chunk, size_t /*begin*/,
                       size_t /*end*/) {
                     got[chunk] = cache.GetOrBuild(key, [&] {
                       ++builds;
                       // Hold the build open so concurrent requesters pile
                       // up on the condvar instead of racing past an
                       // already-ready entry.
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(20));
                       return NgramInvertedIndex::Build(SmallColumn("c"), 2,
                                                        4, false);
                     });
                   });

  EXPECT_EQ(builds.load(), 1);
  for (const auto& index : got) {
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index.get(), got[0].get());  // everyone shares the winner's
  }
  const IndexCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kRequests - 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(IndexCache, FingerprintChangeInvalidatesWithoutExplicitCall) {
  TableCatalog catalog;
  Table table("t");
  table.AddColumn(SmallColumn("c"));
  auto id = catalog.AddTable(std::move(table));
  ASSERT_TRUE(id.ok());
  const uint64_t before = catalog.fingerprint(*id);
  ASSERT_NE(before, 0u);

  IndexCache cache;
  std::atomic<int> builds{0};
  const auto build = [&] {
    ++builds;
    return NgramInvertedIndex::Build(catalog.column({*id, 0}), 2, 4, false);
  };

  cache.GetOrBuild(MakeKey(before), build);   // miss: first sight
  cache.GetOrBuild(MakeKey(before), build);   // hit
  EXPECT_EQ(builds.load(), 1);

  // Mutate the table: the catalog recomputes the content fingerprint, so
  // the old entry is simply never addressed again — no invalidate call.
  Table mutated = catalog.table(*id);
  mutated.mutable_column(0).Set(0, "ALPHA-REWRITTEN");
  auto updated = catalog.UpdateTable(std::move(mutated));
  ASSERT_TRUE(updated.ok());
  ASSERT_EQ(*updated, *id);  // update keeps the stable id
  const uint64_t after = catalog.fingerprint(*id);
  EXPECT_NE(after, before);

  cache.GetOrBuild(MakeKey(after), build);  // miss: new contents
  cache.GetOrBuild(MakeKey(after), build);  // hit
  EXPECT_EQ(builds.load(), 2);

  const IndexCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
  // The orphaned pre-update entry stays resident until the budget ages it
  // out of the LRU ring (this cache is unlimited, so it is still here).
  EXPECT_EQ(stats.entries, 2u);
}

TEST(IndexCache, BudgetEvictsLeastRecentlyUsedFirst) {
  // Three identical columns under distinct fingerprints: every entry costs
  // the same, so a budget of two entries forces exactly one eviction on the
  // third install — and it must take the LRU tail, not the recently-touched
  // entry.
  const size_t one_entry_bytes =
      NgramInvertedIndex::Build(SmallColumn("c"), 2, 4, false).MemoryBytes();
  ASSERT_GT(one_entry_bytes, 0u);

  IndexCache cache(2 * one_entry_bytes);
  std::atomic<int> builds{0};
  const auto build = [&] {
    ++builds;
    return NgramInvertedIndex::Build(SmallColumn("c"), 2, 4, false);
  };

  cache.GetOrBuild(MakeKey(1), build);  // A
  cache.GetOrBuild(MakeKey(2), build);  // B
  cache.GetOrBuild(MakeKey(1), build);  // touch A: LRU order is now A, B
  EXPECT_EQ(builds.load(), 2);

  cache.GetOrBuild(MakeKey(3), build);  // C: over budget, evicts B
  EXPECT_EQ(builds.load(), 3);
  EXPECT_EQ(cache.GetStats().evictions, 1u);

  cache.GetOrBuild(MakeKey(1), build);  // A survived the eviction...
  EXPECT_EQ(builds.load(), 3);
  cache.GetOrBuild(MakeKey(2), build);  // ...B did not: rebuilt
  EXPECT_EQ(builds.load(), 4);
}

TEST(IndexCache, TinyBudgetRetainsTheJustInstalledEntry) {
  const size_t one_entry_bytes =
      NgramInvertedIndex::Build(SmallColumn("c"), 2, 4, false).MemoryBytes();
  // Budget smaller than a single index: the cache must not thrash down to
  // nothing — each install retains the newest entry and evicts the rest.
  IndexCache cache(one_entry_bytes / 2);
  std::atomic<int> builds{0};
  const auto build = [&] {
    ++builds;
    return NgramInvertedIndex::Build(SmallColumn("c"), 2, 4, false);
  };

  cache.GetOrBuild(MakeKey(1), build);
  EXPECT_EQ(cache.GetStats().entries, 1u);
  cache.GetOrBuild(MakeKey(2), build);
  const IndexCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  cache.GetOrBuild(MakeKey(2), build);  // newest entry is servable
  EXPECT_EQ(builds.load(), 2);
}

// ---------------------------------------------------------------------------
// Property test: cache on/off byte-identity under random maintenance.
// ---------------------------------------------------------------------------

void ExpectIdenticalDiscovery(const CorpusDiscoveryResult& a,
                              const CorpusDiscoveryResult& b,
                              const std::string& context) {
  EXPECT_EQ(a.total_column_pairs, b.total_column_pairs) << context;
  EXPECT_EQ(a.pruned_pairs, b.pruned_pairs) << context;
  EXPECT_EQ(a.failed_pairs, b.failed_pairs) << context;
  ASSERT_EQ(a.results.size(), b.results.size()) << context;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const CorpusPairResult& x = a.results[i];
    const CorpusPairResult& y = b.results[i];
    EXPECT_TRUE(x.source == y.source && x.target == y.target)
        << context << " pair " << i;
    EXPECT_EQ(x.candidate.score, y.candidate.score) << context << " " << i;
    EXPECT_EQ(x.learning_pairs, y.learning_pairs) << context << " " << i;
    EXPECT_EQ(x.joined_rows, y.joined_rows) << context << " " << i;
    EXPECT_EQ(x.top_coverage, y.top_coverage) << context << " " << i;
    EXPECT_EQ(x.transformations, y.transformations) << context << " " << i;
    EXPECT_EQ(x.error, y.error) << context << " " << i;
  }
}

SynthCorpus MakeCorpus(const char* prefix, size_t pairs, size_t noise,
                       uint64_t seed) {
  SynthCorpusOptions options;
  options.num_joinable_pairs = pairs;
  options.num_noise_tables = noise;
  options.rows = 20;
  options.seed = seed;
  options.name_prefix = prefix;
  return GenerateSynthCorpus(options);
}

/// Runs a random add/remove/update sequence over one catalog while a SINGLE
/// IndexCache spans every step — the cross-mutation scenario the
/// fingerprint keying exists for. After each mutation, discovery with the
/// shared cache at thread counts 1/2/4/8 must be byte-identical to a
/// cache-disabled run over the same state.
void RunMaintenanceIdentityProperty(const StorageOptions& storage,
                                    size_t cache_budget_bytes,
                                    const std::string& label) {
  const SynthCorpus base = MakeCorpus("synth", 3, 2, 17);
  const SynthCorpus extra = MakeCorpus("add", 2, 1, 18);
  std::vector<Table> reservoir(extra.tables.begin(), extra.tables.end());
  size_t next_reservoir = 0;

  TableCatalog catalog(SignatureOptions(), storage);
  for (const Table& table : base.tables) {
    ASSERT_TRUE(catalog.AddTable(table).ok());
  }
  catalog.ComputeSignatures();

  IndexCache cache(cache_budget_bytes);

  const auto check_identity = [&](const std::string& context) {
    CorpusDiscoveryOptions plain;
    plain.num_threads = 1;
    const CorpusDiscoveryResult reference =
        DiscoverJoinableColumns(&catalog, plain);
    ASSERT_FALSE(reference.results.empty()) << context;
    for (const int threads : {1, 2, 4, 8}) {
      CorpusDiscoveryOptions cached = plain;
      cached.num_threads = threads;
      cached.index_cache = &cache;
      const CorpusDiscoveryResult got =
          DiscoverJoinableColumns(&catalog, cached);
      ExpectIdenticalDiscovery(
          reference, got,
          label + " " + context + StrPrintf(" [threads=%d]", threads));
    }
  };

  check_identity("initial");

  Rng rng(12345);
  for (int op = 0; op < 4; ++op) {
    const std::string context = StrPrintf("op %d", op);
    std::vector<uint32_t> live;
    for (uint32_t t = 0; t < catalog.num_slots(); ++t) {
      if (catalog.IsLive(t)) live.push_back(t);
    }
    const uint64_t kind = rng.Uniform(3);
    if (kind == 0 && next_reservoir < reservoir.size()) {
      auto id = catalog.AddTable(reservoir[next_reservoir++]);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      catalog.ComputeSignatures();
    } else if (kind == 1 && live.size() > 4) {
      const uint32_t victim =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      ASSERT_TRUE(catalog.RemoveTable(catalog.table(victim).name()).ok());
    } else {
      const uint32_t victim =
          live[static_cast<size_t>(rng.Uniform(live.size()))];
      Table mutated = catalog.table(victim);
      if (mutated.num_rows() == 0) continue;
      const size_t row =
          static_cast<size_t>(rng.Uniform(mutated.num_rows()));
      mutated.mutable_column(0).Set(
          row, StrPrintf("updated-cell-%d-%llu", op,
                         static_cast<unsigned long long>(rng.NextU64())));
      auto id = catalog.UpdateTable(std::move(mutated));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_EQ(*id, victim);
      catalog.ComputeSignatures();
    }
    check_identity(context);
  }

  // The cache must actually have been exercised — identity by bypass would
  // prove nothing. Hit counts under a tiny budget depend on eviction
  // timing in the pair-level fan-out, so the churn variant asserts
  // evictions happened instead of hits.
  const IndexCacheStats stats = cache.GetStats();
  EXPECT_GT(stats.misses, 0u) << label;
  if (cache_budget_bytes == 0) {
    EXPECT_GT(stats.hits, 0u) << label;
  } else {
    EXPECT_GT(stats.evictions, 0u) << label;
  }
}

TEST(IndexCacheProperty, MaintenanceIdentityOnHeapCatalog) {
  RunMaintenanceIdentityProperty(StorageOptions(), /*cache_budget_bytes=*/0,
                                 "heap");
}

TEST(IndexCacheProperty, MaintenanceIdentityOnSpilledCatalogTinyBudget) {
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "tj_cache_spill")
          .string();
  std::filesystem::create_directories(spill_dir);
  StorageOptions storage;
  storage.spill_dir = spill_dir;
  // A deliberately tiny budget: constant eviction churn during the
  // sequence, and identity must hold anyway.
  RunMaintenanceIdentityProperty(storage, /*cache_budget_bytes=*/64 << 10,
                                 "spilled");
}

}  // namespace
}  // namespace tj
