// Tests pinned to the paper's lemmas and running examples (§4.1.2-§4.1.3),
// documenting how this implementation behaves on each.

#include <gtest/gtest.h>

#include "core/discovery.h"

namespace tj {
namespace {

TEST(Lemma2, MaximalPlaceholdersMinimizeTransformationLength) {
  // The paper's t1: <Substr, Literal('.'), Substr, Literal('b')> (4 units,
  // 2 placeholders) covers row 1 with maximal-length placeholders; a
  // non-maximal variant needs 5 units. Our generator builds from maximal
  // placeholders, so the best covering transformation for the row has at
  // most the maximal-skeleton unit count.
  const std::vector<ExamplePair> rows = {
      {"abcdefghijklmn", "defg.jkb"},
  };
  const DiscoveryResult result =
      DiscoverTransformations(rows, DiscoveryOptions());
  ASSERT_FALSE(result.top.empty());
  const Transformation& best = result.store.Get(result.top[0].id);
  EXPECT_EQ(result.top[0].coverage, 1u);
  // Maximal decomposition of "defg.jkb": P(defg) L(.) P(jk) P(b)/L... at
  // most 3 placeholder units are needed.
  EXPECT_LE(best.NumPlaceholderUnits(result.units), 3u);
}

TEST(Lemma3, MaximalLengthPlaceholdersCanMissTheMaximumCoverage) {
  // The example before Lemma 3: both rows are covered together only by
  // <Literal('a'), Split('a',1)> — whose placeholder is NOT maximal-length.
  // An implementation restricted to maximal-length placeholders (ours, per
  // §4.1.3) covers each row by its own transformation instead: the covering
  // set still reaches full coverage, but the top coverage stays 1.
  const std::vector<ExamplePair> rows = {
      {"12345sabcdefg", "abcdefg"},
      {"67890taxxxx", "axxxx"},
  };
  const DiscoveryResult result =
      DiscoverTransformations(rows, DiscoveryOptions());
  ASSERT_FALSE(result.top.empty());
  EXPECT_EQ(result.top[0].coverage, 1u)
      << "maximal-length placeholders cannot express the shared rule";
  EXPECT_DOUBLE_EQ(result.CoverSetCoverageFraction(), 1.0);
  EXPECT_EQ(result.cover.selected.size(), 2u);
  // The per-row transformations are the unique-separator splits the lemma's
  // proof describes (Split('s',1) / Split('t',1)) or equivalents.
  for (size_t i = 0; i < rows.size(); ++i) {
    bool covered = false;
    for (const auto& ranked : result.cover.selected) {
      covered |= result.store.Get(ranked.id)
                     .Covers(rows[i].source, rows[i].target, result.units);
    }
    EXPECT_TRUE(covered) << "row " << i;
  }
}

TEST(Lemma4Case1, SeparatorTokenizationRecoversTheCommonRule) {
  // Lemma 4 case 1: a common separator falls inside the maximal
  // placeholder. Tokenizing at separators (the paper's fix, §4.1.3) makes
  // the shared rule discoverable.
  const std::vector<ExamplePair> rows = {
      {"Victor Robbie Kasumba", "Victor R. Kasumba"},
      {"Amelia Grace Thornton", "Amelia G. Thornton"},
      {"Oliver James Whitfield", "Oliver J. Whitfield"},
  };
  const DiscoveryResult result =
      DiscoverTransformations(rows, DiscoveryOptions());
  ASSERT_FALSE(result.top.empty());
  EXPECT_EQ(result.top[0].coverage, 3u);
  const Transformation& t = result.store.Get(result.top[0].id);
  // Generalizes to a fresh name.
  EXPECT_EQ(t.Apply("Walter Henry Douglas", result.units),
            std::optional<std::string>("Walter H. Douglas"));
}

TEST(Section2, PhoneFormattingExample) {
  // The introduction's phone example: three formats of the same number.
  // (780) 432-3636 -> +1 780 432-3636 and -> 1-780-432-3636.
  const std::vector<ExamplePair> to_plus = {
      {"(780) 432-3636", "+1 780 432-3636"},
      {"(403) 555-1234", "+1 403 555-1234"},
  };
  const DiscoveryResult a = DiscoverTransformations(to_plus,
                                                    DiscoveryOptions());
  ASSERT_FALSE(a.top.empty());
  EXPECT_EQ(a.top[0].coverage, 2u);
  EXPECT_EQ(a.store.Get(a.top[0].id).Apply("(587) 111-2222", a.units),
            std::optional<std::string>("+1 587 111-2222"));

  const std::vector<ExamplePair> to_dashes = {
      {"(780) 432-3636", "1-780-432-3636"},
      {"(403) 555-1234", "1-403-555-1234"},
  };
  const DiscoveryResult b =
      DiscoverTransformations(to_dashes, DiscoveryOptions());
  ASSERT_FALSE(b.top.empty());
  EXPECT_EQ(b.top[0].coverage, 2u);
}

TEST(Section4_1, PlaceholderDefinitionMatchesCommonSubstrings) {
  // Definition 4 + the Figure 2 example: "michael" and "bowling" are the
  // placeholders of the email target.
  const std::vector<ExamplePair> rows = {
      {"bowling, michael", "michael.bowling@ualberta.ca"},
  };
  const DiscoveryResult result =
      DiscoverTransformations(rows, DiscoveryOptions());
  ASSERT_FALSE(result.top.empty());
  // Some covering transformation uses two copying units (the two
  // placeholders) — check the best-known structure exists in the store.
  bool found_two_placeholder_cover = false;
  for (const auto& ranked : result.top) {
    const Transformation& t = result.store.Get(ranked.id);
    if (t.NumPlaceholderUnits(result.units) == 2 &&
        t.Covers(rows[0].source, rows[0].target, result.units)) {
      found_two_placeholder_cover = true;
    }
  }
  EXPECT_TRUE(found_two_placeholder_cover);
}

}  // namespace
}  // namespace tj
