// Tests for the table substrate: Column, Table, CSV round-trips, PairSet.

#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/table.h"
#include "table/table_pair.h"

namespace tj {
namespace {

TEST(Column, BasicAccessors) {
  Column c("name", {"a", "bb", "ccc"});
  EXPECT_EQ(c.name(), "name");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Get(1), "bb");
  EXPECT_DOUBLE_EQ(c.AverageLength(), 2.0);
}

TEST(Column, EmptyColumnAverageLengthIsZero) {
  Column c("x");
  EXPECT_DOUBLE_EQ(c.AverageLength(), 0.0);
}

TEST(Table, AddColumnEnforcesRowCount) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(Column("a", {"1", "2"})).ok());
  const Status bad = t.AddColumn(Column("b", {"1"}));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, AddColumnRejectsDuplicateNames) {
  Table t;
  ASSERT_TRUE(t.AddColumn(Column("a", {"1"})).ok());
  EXPECT_EQ(t.AddColumn(Column("a", {"2"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(Table, ColumnLookup) {
  Table t;
  ASSERT_TRUE(t.AddColumn(Column("x", {"1"})).ok());
  ASSERT_TRUE(t.AddColumn(Column("y", {"2"})).ok());
  const auto idx = t.ColumnIndex("y");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(t.ColumnIndex("z").ok());
  EXPECT_NE(t.FindColumn("x"), nullptr);
  EXPECT_EQ(t.FindColumn("z"), nullptr);
}

TEST(Csv, ParsesHeaderAndRows) {
  const auto result = ReadCsvString("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(result.ok());
  const Table& t = *result;
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).name(), "a");
  EXPECT_EQ(t.column(1).Get(1), "4");
}

TEST(Csv, QuotedFieldsWithEmbeddedSeparatorsAndQuotes) {
  const auto result =
      ReadCsvString("name,notes\n\"Smith, J\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).Get(0), "Smith, J");
  EXPECT_EQ(result->column(1).Get(0), "said \"hi\"");
}

TEST(Csv, QuotedNewlineInsideField) {
  const auto result = ReadCsvString("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).Get(0), "line1\nline2");
}

TEST(Csv, CrLfLineEndings) {
  const auto result = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(1).Get(0), "2");
}

TEST(Csv, RaggedRowIsAnError) {
  const auto result = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, UnterminatedQuoteIsAnError) {
  const auto result = ReadCsvString("a\n\"oops\n");
  EXPECT_FALSE(result.ok());
}

TEST(Csv, EmptyInputIsAnError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(Csv, NoHeaderModeSynthesizesNames) {
  CsvOptions options;
  options.has_header = false;
  const auto result = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column(0).name(), "col0");
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(Csv, RoundTripPreservesContent) {
  Table t("rt");
  ASSERT_TRUE(t.AddColumn(Column("a,b", {"x", "with \"q\"", "multi\nline"}))
                  .ok());
  ASSERT_TRUE(t.AddColumn(Column("plain", {"1", "2", "3"})).ok());
  const std::string csv = WriteCsvString(t);
  const auto parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->column(0).name(), "a,b");
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(parsed->column(0).Get(r), t.column(0).Get(r));
    EXPECT_EQ(parsed->column(1).Get(r), t.column(1).Get(r));
  }
}

TEST(PairSet, AddDeduplicatesAndKeepsOrder) {
  PairSet s;
  EXPECT_TRUE(s.Add(RowPair{1, 2}));
  EXPECT_TRUE(s.Add(RowPair{2, 3}));
  EXPECT_FALSE(s.Add(RowPair{1, 2}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(RowPair{1, 2}));
  EXPECT_FALSE(s.Contains(RowPair{2, 2}));
  EXPECT_EQ(s.pairs()[0], (RowPair{1, 2}));
  EXPECT_EQ(s.pairs()[1], (RowPair{2, 3}));
}

}  // namespace
}  // namespace tj
