// Robustness tests for the signature cache and the CSV ingestion path that
// feeds the catalog: malformed/truncated/v1-era cache files must fail
// closed (error out and install nothing — the caller rescans), v2 entries
// self-invalidate via per-table content fingerprints, a v1 dump migrates
// to v2 through one load/save round trip, and AddCsvDirectory survives the
// awkward corners of real CSV files.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/catalog.h"
#include "corpus/signature.h"
#include "datagen/corpus.h"
#include "table/csv.h"

namespace tj {
namespace {

SynthCorpus SmallCorpus(uint64_t seed = 7) {
  SynthCorpusOptions options;
  options.num_joinable_pairs = 2;
  options.num_noise_tables = 1;
  options.rows = 20;
  options.seed = seed;
  return GenerateSynthCorpus(options);
}

TableCatalog BuildCatalog(const SynthCorpus& corpus) {
  TableCatalog catalog;
  for (const Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    EXPECT_TRUE(added.ok()) << added.status().ToString();
  }
  return catalog;
}

void ExpectNothingInstalled(const TableCatalog& catalog) {
  for (const ColumnRef ref : catalog.AllColumns()) {
    EXPECT_FALSE(catalog.HasSignature(ref));
  }
}

/// Downgrades a v2 dump to the v1 wire format: v1 header, no fp= keys.
std::string DowngradeToV1(std::string dump) {
  const std::string v2_header = "# tj-signatures v2";
  const size_t header = dump.find(v2_header);
  EXPECT_NE(header, std::string::npos);
  dump.replace(header, v2_header.size(), "# tj-signatures v1");
  size_t pos = 0;
  while ((pos = dump.find(" fp=", pos)) != std::string::npos) {
    size_t end = pos + 4;
    while (end < dump.size() && dump[end] >= '0' && dump[end] <= '9') ++end;
    dump.erase(pos, end - pos);
  }
  return dump;
}

TEST(SignatureCache, SerializesAsV2WithFingerprints) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();
  EXPECT_EQ(dump.rfind("# tj-signatures v2", 0), 0u);
  EXPECT_NE(dump.find(" fp="), std::string::npos);
}

TEST(SignatureCache, MalformedDumpsFailClosed) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();

  const std::vector<std::string> malformed = {
      "",                                     // empty
      "garbage",                              // no header
      "# tj-signatures v3\n",                 // unknown version
      "# tj-signatures v2\ngarbage\n",        // junk line
      "# tj-signatures v2\ntable 'x'\n",      // table before options
      // Options disagreeing with the catalog's sketch parameters.
      "# tj-signatures v2\noptions ngram=4 hashes=9 seed=1 lowercase=1\n",
  };
  for (const std::string& text : malformed) {
    TableCatalog target = BuildCatalog(corpus);
    EXPECT_FALSE(target.LoadSignatures(text).ok()) << text;
    ExpectNothingInstalled(target);
  }
}

TEST(SignatureCache, TruncatedDumpsFailClosed) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();

  // Cut inside the final minhash line: the dangling column must error.
  const size_t last_minhash = dump.rfind("minhash");
  ASSERT_NE(last_minhash, std::string::npos);
  {
    TableCatalog target = BuildCatalog(corpus);
    const std::string truncated = dump.substr(0, last_minhash);
    EXPECT_FALSE(target.LoadSignatures(truncated).ok());
    ExpectNothingInstalled(target);
  }
  // Cut mid-way through the minhash numbers: slot-count check trips.
  {
    TableCatalog target = BuildCatalog(corpus);
    const std::string truncated = dump.substr(0, last_minhash + 40);
    EXPECT_FALSE(target.LoadSignatures(truncated).ok());
    ExpectNothingInstalled(target);
  }
}

TEST(SignatureCache, V1MigrationRoundTrip) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string v2_dump = catalog.SerializeSignatures();
  const std::string v1_dump = DowngradeToV1(v2_dump);
  ASSERT_EQ(v1_dump.rfind("# tj-signatures v1", 0), 0u);
  ASSERT_EQ(v1_dump.find(" fp="), std::string::npos);

  // A clean v1 dump loads (migration path)...
  TableCatalog migrated = BuildCatalog(corpus);
  const Status loaded = migrated.LoadSignatures(v1_dump);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (const ColumnRef ref : catalog.AllColumns()) {
    ASSERT_TRUE(migrated.HasSignature(ref));
    EXPECT_TRUE(migrated.signature(ref) == catalog.signature(ref));
  }
  // ...and the next save writes v2 with fingerprints, byte-identical to a
  // native v2 serialization.
  EXPECT_EQ(migrated.SerializeSignatures(), v2_dump);
}

TEST(SignatureCache, V1DriftFailsClosed) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string v1_dump = DowngradeToV1(catalog.SerializeSignatures());

  // v1 has no fingerprints, so an unknown table name cannot be told apart
  // from corruption: fail closed, install nothing.
  std::string renamed = v1_dump;
  const size_t table_pos = renamed.find("table '");
  ASSERT_NE(table_pos, std::string::npos);
  renamed.replace(table_pos, 7, "table 'zz");
  TableCatalog target = BuildCatalog(corpus);
  EXPECT_FALSE(target.LoadSignatures(renamed).ok());
  ExpectNothingInstalled(target);

  // Row-count drift (the only v1-detectable staleness) also fails closed.
  std::string drifted = v1_dump;
  const size_t rows_pos = drifted.find("rows=");
  ASSERT_NE(rows_pos, std::string::npos);
  drifted.replace(rows_pos, 7, "rows=9");
  TableCatalog target2 = BuildCatalog(corpus);
  EXPECT_FALSE(target2.LoadSignatures(drifted).ok());
  ExpectNothingInstalled(target2);
}

TEST(SignatureCache, V2StaleFingerprintSelfInvalidates) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();

  // Mutate one table's content; its block must be skipped on reload while
  // every other table's sketches install.
  TableCatalog stale = BuildCatalog(corpus);
  Table mutated = corpus.tables[0];
  mutated.mutable_column(0).Set(0, "content drifted since cache write");
  auto updated = stale.UpdateTable(std::move(mutated));
  ASSERT_TRUE(updated.ok());
  const Status loaded = stale.LoadSignatures(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (const ColumnRef ref : stale.AllColumns()) {
    if (ref.table == *updated) {
      EXPECT_FALSE(stale.HasSignature(ref)) << "stale sketch served";
    } else {
      EXPECT_TRUE(stale.HasSignature(ref));
    }
  }
  // The next compute pass re-sketches only the mutated table, after which
  // a new dump carries its fresh fingerprint.
  stale.ComputeSignatures();
  const std::string redump = stale.SerializeSignatures();
  TableCatalog verify = BuildCatalog(corpus);
  ASSERT_TRUE(verify.UpdateTable([&] {
                      Table again = corpus.tables[0];
                      again.mutable_column(0).Set(
                          0, "content drifted since cache write");
                      return again;
                    }())
                  .ok());
  ASSERT_TRUE(verify.LoadSignatures(redump).ok());
  for (const ColumnRef ref : verify.AllColumns()) {
    EXPECT_TRUE(verify.HasSignature(ref));
  }
}

TEST(SignatureCache, V2UnknownTableBlockIsSkipped) {
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();

  // The catalog dropped a table since the cache was written: its block is
  // stale and skipped, the rest installs.
  TableCatalog shrunk = BuildCatalog(corpus);
  const std::string removed = corpus.tables[0].name();
  ASSERT_TRUE(shrunk.RemoveTable(removed).ok());
  const Status loaded = shrunk.LoadSignatures(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  for (const ColumnRef ref : shrunk.AllColumns()) {
    EXPECT_TRUE(shrunk.HasSignature(ref));
  }
}

TEST(SignatureCache, FileRoundTripAcrossCatalogMutation) {
  namespace fs = std::filesystem;
  const SynthCorpus corpus = SmallCorpus();
  TableCatalog catalog = BuildCatalog(corpus);
  catalog.ComputeSignatures();
  const std::string path =
      (fs::path(::testing::TempDir()) / "cache_v2.tj").string();
  ASSERT_TRUE(catalog.SaveSignaturesToFile(path).ok());

  TableCatalog reloaded = BuildCatalog(corpus);
  ASSERT_TRUE(reloaded.LoadSignaturesFromFile(path).ok());
  for (const ColumnRef ref : catalog.AllColumns()) {
    EXPECT_TRUE(reloaded.signature(ref) == catalog.signature(ref));
  }
}

// ---------------------------------------------------------------------------
// CSV edge cases feeding the catalog through AddCsvDirectory.
// ---------------------------------------------------------------------------

class CsvEdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("csv_edge_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void WriteFile(const std::string& name, const std::string& bytes) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  std::filesystem::path dir_;
};

TEST_F(CsvEdgeCaseTest, QuotedSeparatorsAndEscapedQuotes) {
  WriteFile("quoted.csv",
            "name,address\n"
            "\"Smith, John\",\"123 Main St, Apt 4\"\n"
            "\"says \"\"hi\"\"\",plain\n");
  TableCatalog catalog;
  const auto report = catalog.AddCsvDirectory(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(catalog.num_tables(), 1u);
  const Table& table = catalog.table(0);
  ASSERT_EQ(table.num_columns(), 2u);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.column(0).Get(0), "Smith, John");
  EXPECT_EQ(table.column(1).Get(0), "123 Main St, Apt 4");
  EXPECT_EQ(table.column(0).Get(1), "says \"hi\"");
}

TEST_F(CsvEdgeCaseTest, CrlfLineEndings) {
  WriteFile("crlf.csv", "a,b\r\nv1,v2\r\nv3,v4\r\n");
  TableCatalog catalog;
  const auto report = catalog.AddCsvDirectory(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Table& table = catalog.table(0);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.column(0).name(), "a");
  EXPECT_EQ(table.column(1).Get(1), "v4");  // no trailing \r in cells
}

TEST_F(CsvEdgeCaseTest, EmptyTrailingColumns) {
  WriteFile("trailing.csv",
            "a,b,c\n"
            "1,,\n"
            ",,3\n");
  TableCatalog catalog;
  const auto report = catalog.AddCsvDirectory(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Table& table = catalog.table(0);
  ASSERT_EQ(table.num_columns(), 3u);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.column(0).Get(0), "1");
  EXPECT_EQ(table.column(1).Get(0), "");
  EXPECT_EQ(table.column(2).Get(0), "");
  EXPECT_EQ(table.column(0).Get(1), "");
  EXPECT_EQ(table.column(2).Get(1), "3");
}

TEST_F(CsvEdgeCaseTest, NonUtf8BytesSurviveAndSketchCleanly) {
  std::string bytes = "id,blob\n";
  bytes += "r1,";
  bytes += '\xff';
  bytes += '\xfe';
  bytes += "latin1:";
  bytes += '\xe9';  // é in Latin-1, invalid UTF-8 lead byte position
  bytes += "\nr2,plain\n";
  WriteFile("binary.csv", bytes);
  TableCatalog catalog;
  const auto report = catalog.AddCsvDirectory(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Table& table = catalog.table(0);
  ASSERT_EQ(table.num_rows(), 2u);
  const std::string_view cell = table.column(1).Get(0);
  EXPECT_EQ(cell.size(), 10u);
  EXPECT_EQ(static_cast<unsigned char>(cell[0]), 0xffu);

  // The signature pass classifies the raw bytes as "other" and neither
  // crashes nor loses the row; the cache round-trips the stats exactly.
  catalog.ComputeSignatures();
  const ColumnSignature& sig = catalog.signature(ColumnRef{0, 1});
  EXPECT_EQ(sig.num_rows, 2u);
  EXPECT_TRUE(sig.charset_mask & kCharsetOther);
  TableCatalog reloaded;
  ASSERT_TRUE(reloaded.AddCsvDirectory(dir_.string()).ok());
  ASSERT_TRUE(reloaded.LoadSignatures(catalog.SerializeSignatures()).ok());
  EXPECT_TRUE(reloaded.signature(ColumnRef{0, 1}) == sig);
}

TEST_F(CsvEdgeCaseTest, MixedDirectoryLoadsEveryFile) {
  WriteFile("a_quoted.csv", "x\n\"a,b\"\n");
  WriteFile("b_crlf.csv", "x\r\nv\r\n");
  WriteFile("c_plain.csv", "x\nv\n");
  WriteFile("ignored.txt", "not,a,csv\n");
  TableCatalog catalog;
  const auto report = catalog.AddCsvDirectory(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(catalog.num_tables(), 3u);
  EXPECT_EQ(catalog.table(0).name(), "a_quoted");
  EXPECT_EQ(catalog.table(1).name(), "b_crlf");
  EXPECT_EQ(catalog.table(2).name(), "c_plain");
}

}  // namespace
}  // namespace tj
