// DirWatcher tests: create/modify/delete/rename events on a temp
// directory, latest-kind-wins collapsing, timeout behavior, and the
// watch-death signal when the directory disappears.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/watcher.h"

namespace tj::serve {
namespace {

namespace fs = std::filesystem;

class DirWatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("tj_watch_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    ASSERT_TRUE(fs::create_directories(dir_));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(fs::path(dir_) / name);
    out << content;
  }

  /// Polls until at least one event arrives (events may be split across
  /// several inotify reads).
  std::vector<DirWatcher::Event> PollSome(DirWatcher* watcher,
                                          int attempts = 20) {
    for (int i = 0; i < attempts; ++i) {
      auto events = watcher->Poll(100);
      EXPECT_TRUE(events.ok()) << events.status().ToString();
      if (!events.ok() || !events->empty()) return *std::move(events);
    }
    return {};
  }

  std::string dir_;
};

TEST_F(DirWatcherTest, OpenFailsOnMissingDirectory) {
  DirWatcher watcher;
  EXPECT_FALSE(watcher.Open(dir_ + "/nope").ok());
  EXPECT_FALSE(watcher.is_open());
}

TEST_F(DirWatcherTest, TimeoutReturnsEmpty) {
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  auto events = watcher.Poll(20);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST_F(DirWatcherTest, ReportsCompletedWrites) {
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  WriteFile("a.csv", "h\n1\n");
  const auto events = PollSome(&watcher);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "a.csv");
  EXPECT_EQ(events[0].kind, DirWatcher::Event::Kind::kModified);
}

TEST_F(DirWatcherTest, ReportsRenameInAsModified) {
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  // The atomic-publish pattern: write outside, rename into the directory.
  const fs::path outside = fs::path(dir_).parent_path() / "tj_tmp_pub.csv";
  {
    std::ofstream out(outside);
    out << "h\n1\n";
  }
  fs::rename(outside, fs::path(dir_) / "pub.csv");
  const auto events = PollSome(&watcher);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "pub.csv");
  EXPECT_EQ(events[0].kind, DirWatcher::Event::Kind::kModified);
}

TEST_F(DirWatcherTest, ReportsDeletes) {
  WriteFile("gone.csv", "h\n1\n");
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  fs::remove(fs::path(dir_) / "gone.csv");
  const auto events = PollSome(&watcher);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "gone.csv");
  EXPECT_EQ(events[0].kind, DirWatcher::Event::Kind::kRemoved);
}

TEST_F(DirWatcherTest, CollapsesToLatestKind) {
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  WriteFile("x.csv", "h\n1\n");
  fs::remove(fs::path(dir_) / "x.csv");
  // Both raw events are pending in one queue drain: one collapsed event
  // with the latest kind.
  const auto events = PollSome(&watcher);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "x.csv");
  EXPECT_EQ(events[0].kind, DirWatcher::Event::Kind::kRemoved);
}

TEST_F(DirWatcherTest, WatchedDirectoryDeletionIsAnError) {
  DirWatcher watcher;
  ASSERT_TRUE(watcher.Open(dir_).ok());
  fs::remove_all(dir_);
  // The IN_IGNORED from the kernel must surface as an error, not silence.
  bool errored = false;
  for (int i = 0; i < 20 && !errored; ++i) {
    auto events = watcher.Poll(100);
    errored = !events.ok();
  }
  EXPECT_TRUE(errored);
}

}  // namespace
}  // namespace tj::serve
