// Tests for placeholder detection, skeleton enumeration (§4.1.3), and
// unit-candidate extraction (§4.1.4).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/placeholder.h"
#include "core/skeleton.h"
#include "core/unit_extraction.h"
#include "text/lcp.h"

namespace tj {
namespace {

Skeleton Maximal(std::string_view source, std::string_view target) {
  const LcpTable lcp = LcpTable::Build(source, target);
  return BuildMaximalSkeleton(lcp, /*max_matches=*/4);
}

std::string Render(const Skeleton& skeleton, std::string_view target) {
  std::string out;
  for (const auto& block : skeleton.blocks) {
    out += block.is_placeholder ? "P(" : "L(";
    out += target.substr(block.begin, block.end - block.begin);
    out += ")";
  }
  return out;
}

TEST(MaximalSkeleton, GreedyLeftmostLongestDecomposition) {
  // Figure 2's pair: placeholders "michael" and "bowling", literals between.
  const std::string source = "bowling, michael";
  const std::string target = "michael.bowling";
  const Skeleton s = Maximal(source, target);
  EXPECT_EQ(Render(s, target), "P(michael)L(.)P(bowling)");
  EXPECT_EQ(s.num_placeholders, 2);
}

TEST(MaximalSkeleton, WholeTargetLiteralWhenNothingMatches) {
  const std::string target = "xyz";
  const Skeleton s = Maximal("abc", target);
  EXPECT_EQ(Render(s, target), "L(xyz)");
  EXPECT_EQ(s.num_placeholders, 0);
}

TEST(MaximalSkeleton, WholeTargetPlaceholderWhenContained) {
  const std::string target = "bcd";
  const Skeleton s = Maximal("abcde", target);
  EXPECT_EQ(Render(s, target), "P(bcd)");
  ASSERT_EQ(s.blocks[0].src_positions.size(), 1u);
  EXPECT_EQ(s.blocks[0].src_positions[0], 1u);
}

TEST(MaximalSkeleton, RecordsAllMatchPositionsUpToCap) {
  const Skeleton s = Maximal("abab", "ab");
  ASSERT_EQ(s.blocks.size(), 1u);
  EXPECT_EQ(s.blocks[0].src_positions, (std::vector<uint32_t>{0, 2}));
}

TEST(EnumerateSkeletons, VictorExampleProducesPaperSkeletons) {
  // §4.1.3: ("Victor Robbie Kasumba", "Victor R. Kasumba"). Our greedy
  // decomposition anchors the space before "Kasumba" inside the trailing
  // placeholder (" Kasumba" occurs in the source), so the paper's
  // <P'Victor R', L'. ', P'Kasumba'> appears as
  // <P'Victor R', L'.', P' Kasumba'> — identical after literal merging.
  const std::string source = "Victor Robbie Kasumba";
  const std::string target = "Victor R. Kasumba";
  const LcpTable lcp = LcpTable::Build(source, target);
  DiscoveryOptions options;
  const auto skeletons = EnumerateSkeletons(target, lcp, options);

  std::set<std::string> rendered;
  for (const auto& s : skeletons) rendered.insert(Render(s, target));
  EXPECT_TRUE(rendered.count("P(Victor R)L(.)P( Kasumba)"))
      << "maximal skeleton missing";
  EXPECT_TRUE(rendered.count("P(Victor)L( )P(R)L(.)P( Kasumba)"))
      << "first tokenized variant missing (the paper's second skeleton)";
  EXPECT_TRUE(rendered.count("P(Victor R)L(.)L( )P(Kasumba)"))
      << "second tokenized variant missing";
  EXPECT_TRUE(rendered.count("L(Victor R. Kasumba)"))
      << "all-literal skeleton missing";
}

TEST(EnumerateSkeletons, RespectsPlaceholderCap) {
  DiscoveryOptions options;
  options.max_placeholders = 2;
  const std::string source = "Victor Robbie Kasumba";
  const std::string target = "Victor R. Kasumba";
  const LcpTable lcp = LcpTable::Build(source, target);
  for (const auto& s : EnumerateSkeletons(target, lcp, options)) {
    EXPECT_LE(s.num_placeholders, 2);
  }
}

TEST(EnumerateSkeletons, DemotesExcessPlaceholdersInsteadOfDropping) {
  // A target whose constant region shares characters with the source: the
  // base skeleton fragments into many chance placeholders, which must be
  // demoted to literals rather than losing the row entirely.
  const std::string source = "bowling, michael";
  const std::string target = "michael.bowling@ualberta.ca";
  const LcpTable lcp = LcpTable::Build(source, target);
  DiscoveryOptions options;
  const auto skeletons = EnumerateSkeletons(target, lcp, options);
  bool found_two_long_placeholders = false;
  for (const auto& s : skeletons) {
    int long_placeholders = 0;
    for (const auto& b : s.blocks) {
      if (b.is_placeholder && b.length() >= 7) ++long_placeholders;
    }
    if (long_placeholders == 2) found_two_long_placeholders = true;
    EXPECT_LE(s.num_placeholders, options.max_placeholders);
  }
  EXPECT_TRUE(found_two_long_placeholders);
}

TEST(EnumerateSkeletons, EmptyTargetYieldsNothing) {
  const LcpTable lcp = LcpTable::Build("abc", "");
  EXPECT_TRUE(EnumerateSkeletons("", lcp, DiscoveryOptions()).empty());
}

// ---- Unit extraction ----

class ExtractionTest : public ::testing::Test {
 protected:
  /// Extracts candidates for the given occurrence of `text` in `target`.
  std::vector<Unit> Extract(const std::string& source,
                            const std::string& target,
                            const std::string& text,
                            const DiscoveryOptions& options = {}) {
    const size_t tpos = target.find(text);
    EXPECT_NE(tpos, std::string::npos);
    SkeletonBlock block;
    block.is_placeholder = true;
    block.begin = static_cast<uint32_t>(tpos);
    block.end = static_cast<uint32_t>(tpos + text.size());
    const LcpTable lcp = LcpTable::Build(source, target);
    lcp.MatchPositions(block.begin, text.size(), &block.src_positions);
    std::vector<UnitId> ids;
    ExtractUnitsForPlaceholder(source, target, block, options, &units_, &ids);
    std::vector<Unit> out;
    for (UnitId id : ids) out.push_back(units_.Get(id));
    return out;
  }

  UnitInterner units_;
};

TEST_F(ExtractionTest, EveryCandidateEmitsThePlaceholderText) {
  // The central extraction invariant (checked here in release builds too).
  const std::string source = "prus-czarnecki, andrzej";
  const std::string target = "a prus-czarnecki";
  for (const Unit& u : Extract(source, target, "prus-czarnecki")) {
    const auto out = u.Eval(source);
    ASSERT_TRUE(out.has_value()) << u.ToString();
    EXPECT_EQ(*out, "prus-czarnecki") << u.ToString();
  }
}

TEST_F(ExtractionTest, IncludesSubstrSplitAndLiteral) {
  const std::string source = "abc,def";
  const std::string target = "def";
  std::set<UnitKind> kinds;
  for (const Unit& u : Extract(source, target, "def")) kinds.insert(u.kind);
  EXPECT_TRUE(kinds.count(UnitKind::kSubstr));
  EXPECT_TRUE(kinds.count(UnitKind::kSplit));    // piece after ','
  EXPECT_TRUE(kinds.count(UnitKind::kLiteral));  // constant fallback
}

TEST_F(ExtractionTest, SplitEmittedOnlyWhenPieceEqualsText) {
  const std::string source = "xx-abcd-yy";
  // "abc" is a strict prefix of the piece "abcd": Split must not appear,
  // SplitSubstr must.
  std::set<UnitKind> kinds;
  for (const Unit& u : Extract(source, "abc", "abc")) {
    kinds.insert(u.kind);
    if (u.kind == UnitKind::kSplit) {
      ADD_FAILURE() << "Split may not produce a strict sub-piece: "
                    << u.ToString();
    }
  }
  EXPECT_TRUE(kinds.count(UnitKind::kSplitSubstr));
}

TEST_F(ExtractionTest, TwoCharCandidatesWhenEnabled) {
  DiscoveryOptions options;
  options.enable_twochar_split_substr = true;
  const std::string source = "(780) 433-6545";
  bool has_twochar = false;
  for (const Unit& u : Extract(source, "780", "780", options)) {
    if (u.kind == UnitKind::kTwoCharSplitSubstr) {
      has_twochar = true;
      const auto out = u.Eval(source);
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, "780");
    }
  }
  EXPECT_TRUE(has_twochar);
}

TEST_F(ExtractionTest, TwoCharAbsentWhenDisabled) {
  for (const Unit& u : Extract("(780) 433", "780", "780")) {
    EXPECT_NE(u.kind, UnitKind::kTwoCharSplitSubstr);
  }
}

TEST_F(ExtractionTest, RespectsUnitCap) {
  DiscoveryOptions options;
  options.max_units_per_placeholder = 3;
  const auto units = Extract("aXbXcXdXe-target-fXg", "target", "target",
                             options);
  EXPECT_LE(units.size(), 3u);
}

}  // namespace
}  // namespace tj
