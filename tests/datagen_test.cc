// Tests for the dataset generators, including the central synthetic-data
// property: every generated row is covered by its ground-truth
// transformation.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/hash.h"
#include "datagen/figure1.h"
#include "datagen/opendata.h"
#include "datagen/spreadsheet.h"
#include "datagen/synth.h"
#include "datagen/webtables.h"

namespace tj {
namespace {

TEST(SynthGen, GroundTruthCoversEveryRow) {
  const SynthDataset ds = GenerateSynth(SynthN(80, 7));
  ASSERT_EQ(ds.row_rule.size(), 80u);
  for (size_t r = 0; r < 80; ++r) {
    const auto& t = ds.transformations[ds.row_rule[r]];
    const auto source = ds.pair.SourceColumn().Get(r);
    const auto applied = t.Apply(source, ds.units);
    ASSERT_TRUE(applied.has_value());
    // The golden pair points at the shuffled target position.
    bool found = false;
    for (const RowPair& g : ds.pair.golden.pairs()) {
      if (g.source == r) {
        EXPECT_EQ(*applied, ds.pair.TargetColumn().Get(g.target));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(SynthGen, RespectsLengthRange) {
  const SynthDataset ds = GenerateSynth(SynthNL(50, 9));
  for (size_t r = 0; r < 50; ++r) {
    const size_t len = ds.pair.SourceColumn().Get(r).size();
    EXPECT_GE(len, 40u);
    EXPECT_LE(len, 70u);
  }
}

TEST(SynthGen, DeterministicForSeed) {
  const SynthDataset a = GenerateSynth(SynthN(30, 123));
  const SynthDataset b = GenerateSynth(SynthN(30, 123));
  for (size_t r = 0; r < 30; ++r) {
    EXPECT_EQ(a.pair.SourceColumn().Get(r), b.pair.SourceColumn().Get(r));
    EXPECT_EQ(a.pair.TargetColumn().Get(r), b.pair.TargetColumn().Get(r));
  }
}

TEST(SynthGen, DifferentSeedsDiffer) {
  const SynthDataset a = GenerateSynth(SynthN(30, 1));
  const SynthDataset b = GenerateSynth(SynthN(30, 2));
  bool any_diff = false;
  for (size_t r = 0; r < 30; ++r) {
    any_diff |=
        a.pair.SourceColumn().Get(r) != b.pair.SourceColumn().Get(r);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthGen, GoldenIsOneToOne) {
  const SynthDataset ds = GenerateSynth(SynthN(60, 17));
  std::unordered_set<uint32_t> sources;
  std::unordered_set<uint32_t> targets;
  for (const RowPair& g : ds.pair.golden.pairs()) {
    EXPECT_TRUE(sources.insert(g.source).second);
    EXPECT_TRUE(targets.insert(g.target).second);
  }
  EXPECT_EQ(ds.pair.golden.size(), 60u);
}

TEST(SynthGen, UsesConfiguredNumberOfRules) {
  SynthOptions options = SynthN(40, 3);
  options.num_transformations = 5;
  const SynthDataset ds = GenerateSynth(options);
  EXPECT_EQ(ds.transformations.size(), 5u);
  for (size_t rule : ds.row_rule) EXPECT_LT(rule, 5u);
}

TEST(WebTablesGen, ProducesRequestedPairCount) {
  WebTablesOptions options;
  options.num_pairs = 31;
  const auto tables = GenerateWebTables(options);
  EXPECT_EQ(tables.size(), 31u);
  EXPECT_GE(WebTablesTopicCount(), 17u);
}

TEST(WebTablesGen, TablesHaveGoldenAndBothSides) {
  WebTablesOptions options;
  options.num_pairs = 17;
  for (const TablePair& pair : GenerateWebTables(options)) {
    EXPECT_GT(pair.source.num_rows(), 0u) << pair.name;
    EXPECT_GT(pair.target.num_rows(), 0u) << pair.name;
    EXPECT_GT(pair.golden.size(), 0u) << pair.name;
    // Unmatched extras make the sides strictly larger than the golden set.
    EXPECT_GE(pair.source.num_rows(), pair.golden.size()) << pair.name;
    // Golden indices are in range.
    for (const RowPair& g : pair.golden.pairs()) {
      EXPECT_LT(g.source, pair.source.num_rows()) << pair.name;
      EXPECT_LT(g.target, pair.target.num_rows()) << pair.name;
    }
  }
}

TEST(WebTablesGen, SourceValuesAreUnique) {
  WebTablesOptions options;
  options.num_pairs = 17;
  for (const TablePair& pair : GenerateWebTables(options)) {
    std::unordered_set<std::string, StringHash, StringEq> seen;
    const auto& col = pair.SourceColumn();
    for (size_t r = 0; r < col.size(); ++r) {
      EXPECT_TRUE(seen.insert(std::string(col.Get(r))).second)
          << pair.name << " duplicate source " << col.Get(r);
    }
  }
}

TEST(SpreadsheetGen, ProducesRequestedTaskCount) {
  SpreadsheetOptions options;
  options.num_tasks = 108;
  const auto tasks = GenerateSpreadsheet(options);
  EXPECT_EQ(tasks.size(), 108u);
  EXPECT_GE(SpreadsheetArchetypeCount(), 18u);
}

TEST(SpreadsheetGen, GoldenMatchesRowCounts) {
  SpreadsheetOptions options;
  options.num_tasks = 18;
  for (const TablePair& pair : GenerateSpreadsheet(options)) {
    EXPECT_EQ(pair.golden.size(), pair.source.num_rows()) << pair.name;
    EXPECT_EQ(pair.source.num_rows(), pair.target.num_rows()) << pair.name;
  }
}

TEST(OpenDataGen, HasDuplicatesAndExtras) {
  OpenDataOptions options;
  options.num_rows = 300;
  const TablePair pair = GenerateOpenData(options);
  // Duplicates: more golden pairs than distinct target rows they map to.
  EXPECT_GT(pair.golden.size(), 300u * 95 / 100);
  // Extras: both sides strictly larger than the matched core.
  EXPECT_GT(pair.source.num_rows(), 300u);
  EXPECT_GT(pair.target.num_rows(), 300u);
  // The source column (directory style) is the longer, more descriptive one.
  EXPECT_GT(pair.SourceColumn().AverageLength(),
            pair.TargetColumn().AverageLength());
}

TEST(Figure1, PairsAreWellFormed) {
  const TablePair phones = Figure1NamePhonePair();
  EXPECT_EQ(phones.source.num_rows(), 6u);
  EXPECT_EQ(phones.golden.size(), 6u);
  const TablePair emails = Figure1NameEmailPair();
  EXPECT_EQ(emails.target.column(1).Get(0), "drafiei@ualberta.ca");
  EXPECT_EQ(emails.target_join_column, 1u);
}

}  // namespace
}  // namespace tj
