// End-to-end join of the paper's Figure 1 left-hand tables: staff names
// joined with course contact emails. No matching rows are given — the n-gram
// row matcher proposes candidates, discovery learns the name->email rules,
// and the engine equi-joins the transformed values.

#include <cstdio>

#include "datagen/figure1.h"
#include "join/join_engine.h"

int main() {
  using namespace tj;

  const TablePair pair = Figure1NameEmailPair();
  std::printf("source (%s): %zu rows, target (%s): %zu rows\n\n",
              pair.source.name().c_str(), pair.source.num_rows(),
              pair.target.name().c_str(), pair.target.num_rows());

  JoinOptions options;
  options.matching = MatchingMode::kNgram;  // discover candidates ourselves
  options.min_join_support = 0.2;  // tiny table: demand 2 supporting rows

  const JoinResult result = TransformJoin(pair, options);

  std::printf("learning pairs found by n-gram matching: %zu\n",
              result.learning_pairs);
  std::printf("transformations applied to the join:\n");
  for (const auto& t : result.applied_transformations) {
    std::printf("  %s\n", t.c_str());
  }
  std::printf("\njoined pairs (source -> target):\n");
  for (const RowPair& p : result.joined) {
    std::printf("  %-28s -> %s\n",
                std::string(pair.SourceColumn().Get(p.source)).c_str(),
                std::string(pair.TargetColumn().Get(p.target)).c_str());
  }
  std::printf("\nquality vs golden matching: %s\n",
              FormatPrf(result.metrics).c_str());
  return 0;
}
