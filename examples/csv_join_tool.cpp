// csv_join_tool: a command-line front end for the whole pipeline — join two
// CSV files whose join columns are formatted differently.
//
//   csv_join_tool <left.csv> <left-column> <right.csv> <right-column>
//                 [--support F] [--sample N] [--threads N] [--rules out.tj]
//                 [--out out.csv] [--golden pairs.csv]
//
// The tool matches candidate rows with the n-gram matcher, discovers
// transformations, applies those above the support threshold, equi-joins,
// and writes the joined rows (all columns from both tables) as CSV. With
// --rules, the applied transformations are also saved in the textual rule
// format (reloadable via LoadTransformationsFromFile — the paper's §8
// transfer workflow). With --golden (a two-column CSV of 0-based
// left-row,right-row index pairs), the join is scored with P/R/F1.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/failpoint.h"
#include "common/simd.h"
#include "common/strings.h"
#include "core/serialization.h"
#include "corpus/catalog.h"
#include "corpus/lsh_index.h"
#include "corpus/signature.h"
#include "index/index_cache.h"
#include "join/join_engine.h"
#include "table/csv.h"
#include "table/spill_arena.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <left.csv> <left-column> <right.csv> "
               "<right-column>\n"
               "          [--support F] [--sample N] [--threads N] "
               "[--rules out.tj] [--out out.csv] [--golden pairs.csv]\n"
               "          [--spill-dir DIR] [--memory-budget BYTES]\n"
               "          [--index-cache-budget BYTES]\n"
               "          [--precheck] [--simd scalar|avx2|auto]\n"
               "          [--failpoints SPEC]\n"
               "       --simd: pin the kernel dispatch level ('auto' = best "
               "the CPU supports; kernels are bit-identical across levels, "
               "so this only changes speed)\n"
               "       --precheck: sketch both join columns and report the "
               "estimated n-gram containment plus whether their banded "
               "MinHash sketches collide (what the corpus LSH probe would "
               "see), then exit — 0 when they collide, 3 when they do not\n"
               "       --threads N: worker threads for matching and "
               "discovery (0 = all cores, default)\n"
               "       --spill-dir DIR: stream both tables into mmap-backed "
               "arenas under DIR (inputs larger than RAM)\n"
               "       --memory-budget BYTES: with --spill-dir, release "
               "resident pages after ingest so matching faults cells "
               "in on demand (k/m/g suffixes ok)\n"
               "       --index-cache-budget BYTES: byte budget for the "
               "fingerprint-keyed inverted-index cache (0 = unlimited; "
               "one-shot joins build each index once either way — the flag "
               "mirrors corpus_discovery_tool for scripted reuse)\n"
               "       --failpoints SPEC: arm fault-injection sites, e.g. "
               "'mmap/sync=p:0.5,errno:EIO' "
               "(requires a -DTJ_FAILPOINTS=ON build)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tj;
  if (argc < 5) return Usage(argv[0]);

  const std::string left_path = argv[1];
  const std::string left_column = argv[2];
  const std::string right_path = argv[3];
  const std::string right_column = argv[4];
  double support = 0.05;
  size_t sample = 0;
  int threads = 0;  // 0 = hardware concurrency
  std::string rules_path;
  std::string out_path;
  std::string golden_path;
  bool precheck = false;
  StorageOptions storage;
  size_t index_cache_budget = 0;
  bool index_cache_requested = false;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--support") == 0 && i + 1 < argc) {
      support = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--precheck") == 0) {
      precheck = true;
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      storage.spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 &&
               i + 1 < argc) {
      if (!ParseByteSize(argv[++i], &storage.memory_budget_bytes)) {
        std::fprintf(stderr, "invalid --memory-budget value '%s'\n",
                     argv[i]);
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--index-cache-budget") == 0 &&
               i + 1 < argc) {
      if (!ParseByteSize(argv[++i], &index_cache_budget)) {
        std::fprintf(stderr, "invalid --index-cache-budget value '%s'\n",
                     argv[i]);
        return Usage(argv[0]);
      }
      index_cache_requested = true;
    } else if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc) {
      simd::SimdLevel level;
      if (!simd::ParseSimdLevel(argv[++i], &level)) {
        std::fprintf(stderr, "--simd wants scalar|avx2|auto\n");
        return Usage(argv[0]);
      }
      const simd::SimdLevel installed = simd::SetActiveLevel(level);
      if (installed != level) {
        std::fprintf(stderr, "note: --simd %s unsupported here; using %s\n",
                     argv[i], simd::SimdLevelName(installed));
      }
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      sample = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long parsed = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || parsed < 0 || parsed > 1024) {
        std::fprintf(stderr, "invalid --threads value '%s'\n", argv[i]);
        return Usage(argv[0]);
      }
      threads = static_cast<int>(parsed);
    } else if (std::strcmp(argv[i], "--rules") == 0 && i + 1 < argc) {
      rules_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--golden") == 0 && i + 1 < argc) {
      golden_path = argv[++i];
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      if (!failpoint::CompiledIn()) {
        std::fprintf(stderr,
                     "--failpoints requires a -DTJ_FAILPOINTS=ON build\n");
        return 2;
      }
      const Status armed = failpoint::ConfigureFromSpec(argv[++i]);
      if (!armed.ok()) {
        std::fprintf(stderr, "invalid --failpoints spec: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }

  if (storage.memory_budget_bytes > 0 && !storage.spill_enabled()) {
    std::fprintf(stderr, "--memory-budget requires --spill-dir\n");
    return Usage(argv[0]);
  }
  if (storage.spill_enabled()) {
    const Status spill_ready = EnsureSpillDir(storage.spill_dir);
    if (!spill_ready.ok()) {
      std::fprintf(stderr, "error: %s\n", spill_ready.ToString().c_str());
      return 1;
    }
  }

  auto left = ReadCsvFile(left_path, CsvOptions(), storage);
  if (!left.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", left_path.c_str(),
                 left.status().ToString().c_str());
    return 1;
  }
  auto right = ReadCsvFile(right_path, CsvOptions(), storage);
  if (!right.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", right_path.c_str(),
                 right.status().ToString().c_str());
    return 1;
  }
  if (storage.memory_budget_bytes > 0) {
    // Drop ingest-dirtied pages: the join faults cells back in on demand,
    // so steady-state RSS tracks the matcher's working set, not the files.
    left->ReleasePages();
    right->ReleasePages();
  }
  const auto left_idx = left->ColumnIndex(left_column);
  const auto right_idx = right->ColumnIndex(right_column);
  if (!left_idx.ok() || !right_idx.ok()) {
    std::fprintf(stderr, "join column not found\n");
    return 1;
  }

  if (precheck) {
    // The corpus pruning view of this pair, without running the join: the
    // same sketches TableCatalog::ComputeSignatures builds and the same
    // banded-collision test the LSH probe path uses to shortlist partners.
    const SignatureOptions sig_options;
    const ColumnSignature sig_left =
        ComputeColumnSignature(left->column(*left_idx), sig_options);
    const ColumnSignature sig_right =
        ComputeColumnSignature(right->column(*right_idx), sig_options);
    const double containment = EstimateNgramContainment(sig_left, sig_right);
    const bool collide =
        LshIndex::BandsCollide(LshOptions(), sig_left, sig_right);
    std::printf("precheck %s.%s vs %s.%s\n", left_path.c_str(),
                left_column.c_str(), right_path.c_str(),
                right_column.c_str());
    std::printf("  distinct 4-grams: %zu vs %zu\n",
                sig_left.distinct_ngrams, sig_right.distinct_ngrams);
    std::printf("  estimated jaccard: %.4f\n",
                EstimateJaccard(sig_left, sig_right));
    std::printf("  estimated containment: %.4f\n", containment);
    std::printf("  lsh bands collide (128x1): %s\n",
                collide ? "yes" : "no");
    std::printf("  verdict: %s\n",
                collide ? "worth joining (a corpus probe would surface "
                          "this pair)"
                        : "unpromising (a corpus probe would never score "
                          "this pair)");
    return collide ? 0 : 3;
  }

  // The more descriptive column becomes the transformation source (§4.2.1).
  TablePair pair;
  const bool left_is_source = PickSourceColumn(left->column(*left_idx),
                                               right->column(*right_idx));
  pair.source = left_is_source ? *left : *right;
  pair.target = left_is_source ? *right : *left;
  pair.source_join_column = left_is_source ? *left_idx : *right_idx;
  pair.target_join_column = left_is_source ? *right_idx : *left_idx;

  // Optional golden matching: left-row,right-row index pairs, remapped to
  // the source/target orientation chosen above.
  if (!golden_path.empty()) {
    auto golden = ReadCsvFile(golden_path);
    if (!golden.ok() || golden->num_columns() < 2) {
      std::fprintf(stderr, "error reading golden pairs from %s\n",
                   golden_path.c_str());
      return 1;
    }
    for (size_t r = 0; r < golden->num_rows(); ++r) {
      const auto left_row = static_cast<uint32_t>(
          std::atol(std::string(golden->column(0).Get(r)).c_str()));
      const auto right_row = static_cast<uint32_t>(
          std::atol(std::string(golden->column(1).Get(r)).c_str()));
      pair.golden.Add(left_is_source ? RowPair{left_row, right_row}
                                     : RowPair{right_row, left_row});
    }
  }

  JoinOptions options;
  options.matching = MatchingMode::kNgram;
  options.min_join_support = support;
  options.sample_pairs = sample;
  options.discovery.num_threads = threads;
  options.match_options.num_threads = threads;
  IndexCache index_cache(index_cache_budget);
  if (index_cache_requested) {
    options.match_options.index_cache = &index_cache;
    options.match_options.source_cache_key.fingerprint =
        TableFingerprint(pair.source);
    options.match_options.source_cache_key.column =
        static_cast<uint32_t>(pair.source_join_column);
    options.match_options.target_cache_key.fingerprint =
        TableFingerprint(pair.target);
    options.match_options.target_cache_key.column =
        static_cast<uint32_t>(pair.target_join_column);
  }
  const JoinResult result = TransformJoin(pair, options);

  std::printf("learning pairs: %zu, discovery: %.2fs\n",
              result.learning_pairs, result.discovery_seconds);
  std::printf("transformations applied (%zu):\n",
              result.applied_transformations.size());
  for (const auto& t : result.applied_transformations) {
    std::printf("  %s\n", t.c_str());
  }
  std::printf("joined rows: %zu\n", result.joined.size());
  if (!pair.golden.empty()) {
    std::printf("quality vs golden: %s\n",
                FormatPrf(result.metrics).c_str());
  }

  if (!rules_path.empty()) {
    std::vector<TransformationId> ids;
    for (const auto& ranked : result.discovery.cover.selected) {
      ids.push_back(ranked.id);
    }
    const Status saved = SaveTransformationsToFile(
        rules_path, result.discovery.store, result.discovery.units, ids);
    if (!saved.ok()) {
      std::fprintf(stderr, "error saving rules: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("rules written to %s\n", rules_path.c_str());
  }

  if (!out_path.empty()) {
    Table joined("joined");
    // All source columns, then all target columns (prefixed on clash).
    for (const Column& c : pair.source.columns()) {
      Column out(c.name());
      for (const RowPair& p : result.joined) {
        out.Append(c.Get(p.source));
      }
      if (!joined.AddColumn(std::move(out)).ok()) {
        std::fprintf(stderr, "internal error assembling output\n");
        return 1;
      }
    }
    for (const Column& c : pair.target.columns()) {
      std::string name = c.name();
      if (joined.FindColumn(name) != nullptr) name = "right." + name;
      Column out(name);
      for (const RowPair& p : result.joined) {
        out.Append(c.Get(p.target));
      }
      if (!joined.AddColumn(std::move(out)).ok()) {
        std::fprintf(stderr, "internal error assembling output\n");
        return 1;
      }
    }
    const Status written = WriteCsvFile(joined, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", out_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("joined table written to %s\n", out_path.c_str());
  }
  return 0;
}
