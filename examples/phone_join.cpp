// Joining the Figure 1 right-hand tables (staff departments with staff
// phones) and inspecting the discovered rules — the "single predictable
// transformation" case of the paper's problem definition, §2.

#include <cstdio>

#include "core/discovery.h"
#include "datagen/figure1.h"
#include "join/join_engine.h"

int main() {
  using namespace tj;

  const TablePair pair = Figure1NamePhonePair();

  // First: learn with the golden pairs (the "tagged examples" workflow).
  {
    const std::vector<ExamplePair> rows = MakeExamplePairs(
        pair.SourceColumn(), pair.TargetColumn(), pair.golden.pairs());
    DiscoveryOptions options;
    const DiscoveryResult result = DiscoverTransformations(rows, options);
    std::printf("golden-pair discovery:\n%s\n",
                result.Describe().c_str());
  }

  // Second: the fully automatic path (n-gram matching + join).
  {
    JoinOptions options;
    options.matching = MatchingMode::kNgram;
    options.min_join_support = 0.3;
    const JoinResult result = TransformJoin(pair, options);
    std::printf("automatic join: %s (%zu pairs joined)\n",
                FormatPrf(result.metrics).c_str(), result.joined.size());
    for (const RowPair& p : result.joined) {
      std::printf("  %-26s -> %-18s  phone %s\n",
                  std::string(pair.SourceColumn().Get(p.source)).c_str(),
                  std::string(pair.TargetColumn().Get(p.target)).c_str(),
                  std::string(pair.target.column(1).Get(p.target)).c_str());
    }
  }
  return 0;
}
