// corpus_discovery_tool: repository-scale joinable-column discovery over a
// directory of CSV tables.
//
//   corpus_discovery_tool <csv-dir> [--threads N] [--min-containment F]
//                         [--max-candidates N] [--support F] [--top K]
//                         [--signatures cache.tj] [--out results.csv]
//   corpus_discovery_tool --gen <dir> [--tables N] [--rows N] [--seed S]
//   corpus_discovery_tool --selftest
//
// Default mode registers every *.csv file of <csv-dir> in a TableCatalog,
// sketches the columns, prunes the column-pair space with the MinHash
// signatures, runs the full per-pair pipeline over the ranked shortlist on
// one shared thread pool, and prints the ranked results. With --signatures,
// the sketch cache is reloaded from / persisted to that file, so repeated
// runs over a large repository skip the sketching pass. --gen writes a
// synthetic demo corpus (joinable pairs + noise tables) to a directory;
// --selftest generates a tiny corpus in memory, runs end-to-end on two
// threads, and exits non-zero unless every golden pair is found (used as a
// ctest smoke test).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "benchlib/report.h"
#include "common/strings.h"
#include "corpus/catalog.h"
#include "corpus/corpus_discovery.h"
#include "datagen/corpus.h"
#include "table/csv.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <csv-dir> [--threads N] [--min-containment F]\n"
      "          [--max-candidates N] [--support F] [--top K]\n"
      "          [--signatures cache.tj] [--out results.csv]\n"
      "       %s --gen <dir> [--tables N] [--rows N] [--seed S]\n"
      "       %s --selftest\n"
      "  --threads N: pair-level worker threads (0 = all cores, default)\n"
      "  --min-containment F: sketch containment pruning floor "
      "(default 0.05; 0 = brute force)\n"
      "  --signatures F: load/save the column sketch cache\n",
      argv0, argv0, argv0);
  return 2;
}

int GenerateDemoCorpus(const std::string& dir, size_t tables, size_t rows,
                       uint64_t seed) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  tj::SynthCorpusOptions options;
  // `tables` counts total tables: 2 per joinable pair plus ~20%% noise.
  options.num_joinable_pairs = tables >= 4 ? tables * 2 / 5 : 1;
  options.num_noise_tables = tables - 2 * options.num_joinable_pairs;
  options.rows = rows;
  options.seed = seed;
  const tj::SynthCorpus corpus = tj::GenerateSynthCorpus(options);
  for (const tj::Table& table : corpus.tables) {
    const std::string path =
        (fs::path(dir) / (table.name() + ".csv")).string();
    const tj::Status written = tj::WriteCsvFile(table, path);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote %zu tables (%zu joinable pairs, %zu noise) to %s\n",
              corpus.tables.size(), options.num_joinable_pairs,
              options.num_noise_tables, dir.c_str());
  for (const auto& golden : corpus.golden) {
    std::printf("  joinable: %s.csv <-> %s.csv\n",
                corpus.tables[golden.source_table].name().c_str(),
                corpus.tables[golden.target_table].name().c_str());
  }
  return 0;
}

int SelfTest() {
  tj::SynthCorpusOptions corpus_options;
  corpus_options.num_joinable_pairs = 4;
  corpus_options.num_noise_tables = 2;
  corpus_options.rows = 30;
  corpus_options.seed = 5;
  const tj::SynthCorpus corpus = tj::GenerateSynthCorpus(corpus_options);

  tj::TableCatalog catalog;
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "selftest: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }

  tj::CorpusDiscoveryOptions options;
  options.num_threads = 2;
  const tj::CorpusDiscoveryResult result =
      tj::DiscoverJoinableColumns(&catalog, options);
  std::printf("%s", result.Describe(catalog).c_str());

  if (result.PruningRatio() < 0.5) {
    std::fprintf(stderr, "selftest: expected >= 50%% pruning, got %.1f%%\n",
                 100.0 * result.PruningRatio());
    return 1;
  }
  for (const auto& golden : corpus.golden) {
    bool found = false;
    for (const tj::CorpusPairResult& pair : result.results) {
      const bool matches =
          (pair.source.table == golden.source_table &&
           pair.target.table == golden.target_table) ||
          (pair.source.table == golden.target_table &&
           pair.target.table == golden.source_table);
      if (matches && pair.joined_rows > 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "selftest: golden pair %s <-> %s not joined\n",
                   corpus.tables[golden.source_table].name().c_str(),
                   corpus.tables[golden.target_table].name().c_str());
      return 1;
    }
  }
  std::printf("selftest: OK (%zu pairs evaluated, %.1f%% pruned)\n",
              result.results.size(), 100.0 * result.PruningRatio());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tj;
  if (argc < 2) return Usage(argv[0]);

  if (std::strcmp(argv[1], "--selftest") == 0) return SelfTest();

  if (std::strcmp(argv[1], "--gen") == 0) {
    if (argc < 3) return Usage(argv[0]);
    const std::string dir = argv[2];
    size_t tables = 10;
    size_t rows = 40;
    uint64_t seed = 1;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
        tables = static_cast<size_t>(std::atol(argv[++i]));
      } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
        rows = static_cast<size_t>(std::atol(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else {
        return Usage(argv[0]);
      }
    }
    if (tables < 2 || rows == 0) return Usage(argv[0]);
    return GenerateDemoCorpus(dir, tables, rows, seed);
  }

  const std::string dir = argv[1];
  CorpusDiscoveryOptions options;
  options.num_threads = 0;  // all cores
  size_t top = 20;
  std::string signatures_path;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-containment") == 0 &&
               i + 1 < argc) {
      options.pruner.min_containment = std::atof(argv[++i]);
      if (options.pruner.min_containment <= 0.0) {
        options.pruner.require_charset_overlap = false;  // true brute force
      }
    } else if (std::strcmp(argv[i], "--max-candidates") == 0 &&
               i + 1 < argc) {
      options.pruner.max_candidates =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--support") == 0 && i + 1 < argc) {
      options.join.min_join_support = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--signatures") == 0 && i + 1 < argc) {
      signatures_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  TableCatalog catalog;
  const Status loaded_dir = catalog.AddCsvDirectory(dir);
  if (!loaded_dir.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", dir.c_str(),
                 loaded_dir.ToString().c_str());
    return 1;
  }
  if (catalog.num_tables() < 2) {
    std::fprintf(stderr, "%s holds %zu table(s); need at least 2\n",
                 dir.c_str(), catalog.num_tables());
    return 1;
  }
  std::printf("catalog: %zu tables, %zu columns\n", catalog.num_tables(),
              catalog.num_columns());

  if (!signatures_path.empty() &&
      std::filesystem::exists(signatures_path)) {
    const Status loaded = catalog.LoadSignaturesFromFile(signatures_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "ignoring signature cache %s: %s\n",
                   signatures_path.c_str(), loaded.ToString().c_str());
    } else {
      std::printf("loaded signature cache from %s\n",
                  signatures_path.c_str());
    }
  }

  const CorpusDiscoveryResult result =
      DiscoverJoinableColumns(&catalog, options);

  if (!signatures_path.empty()) {
    const Status saved = catalog.SaveSignaturesToFile(signatures_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "error saving signature cache: %s\n",
                   saved.ToString().c_str());
    }
  }

  std::printf("column pairs: %zu total, %zu pruned (%.1f%%), %zu evaluated\n",
              result.total_column_pairs, result.pruned_pairs,
              100.0 * result.PruningRatio(), result.results.size());
  TablePrinter printer({"rank", "source", "target", "score", "pairs",
                        "joined", "coverage", "best transformation"});
  const size_t n = std::min(top, result.results.size());
  for (size_t i = 0; i < n; ++i) {
    const CorpusPairResult& r = result.results[i];
    printer.AddRow(
        {StrPrintf("%zu", i + 1),
         catalog.table(r.source.table).name() + "." +
             catalog.column(r.source).name(),
         catalog.table(r.target.table).name() + "." +
             catalog.column(r.target).name(),
         FormatDouble(r.candidate.score, 3), StrPrintf("%zu", r.learning_pairs),
         StrPrintf("%zu", r.joined_rows), FormatDouble(r.top_coverage, 2),
         r.transformations.empty() ? "-" : r.transformations.front()});
  }
  printer.Print();

  if (!out_path.empty()) {
    Table out("corpus_results");
    Column source("source"), target("target"), score("score"),
        pairs("learning_pairs"), joined("joined_rows"), cov("top_coverage"),
        rules("transformations");
    for (const CorpusPairResult& r : result.results) {
      source.Append(catalog.table(r.source.table).name() + "." +
                    catalog.column(r.source).name());
      target.Append(catalog.table(r.target.table).name() + "." +
                    catalog.column(r.target).name());
      score.Append(StrPrintf("%.6f", r.candidate.score));
      pairs.Append(StrPrintf("%zu", r.learning_pairs));
      joined.Append(StrPrintf("%zu", r.joined_rows));
      cov.Append(StrPrintf("%.4f", r.top_coverage));
      rules.Append(JoinStrings(r.transformations, " ; "));
    }
    for (Column* c : {&source, &target, &score, &pairs, &joined, &cov,
                      &rules}) {
      if (!out.AddColumn(std::move(*c)).ok()) {
        std::fprintf(stderr, "internal error assembling output\n");
        return 1;
      }
    }
    const Status written = WriteCsvFile(out, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", out_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("results written to %s\n", out_path.c_str());
  }
  return 0;
}
