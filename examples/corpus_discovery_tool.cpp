// corpus_discovery_tool: repository-scale joinable-column discovery over a
// directory of CSV tables.
//
//   corpus_discovery_tool <csv-dir> [--threads N] [--min-containment F]
//                         [--max-candidates N] [--support F] [--top K]
//                         [--signatures cache.tj] [--out results.csv]
//                         [--add FILE]... [--remove NAME]... [--update FILE]...
//   corpus_discovery_tool <csv-dir> --serve SOCKET [--watch DIR] [...]
//   corpus_discovery_tool --client SOCKET JSON...
//   corpus_discovery_tool --gen <dir> [--tables N] [--rows N] [--seed S]
//   corpus_discovery_tool --selftest
//
// Default mode registers every *.csv file of <csv-dir> in a TableCatalog,
// sketches the columns, prunes the column-pair space with the MinHash
// signatures, runs the full per-pair pipeline over the ranked shortlist on
// one shared thread pool, and prints the ranked results. With --signatures,
// the sketch cache is reloaded from / persisted to that file; the v2 cache
// format carries per-table content fingerprints, so entries for tables that
// changed on disk self-invalidate and only those tables are re-sketched —
// repeated runs over a mutating repository stay incremental.
//
// --add/--remove/--update apply catalog maintenance on top of the loaded
// directory through the incremental pruner: each op rescores only the
// touched table's column pairs (O(N) in catalog size) instead of rebuilding
// the whole shortlist, and prints the per-op scoring cost.
//
// --serve turns the tool into tjd, a long-lived daemon answering joinable /
// transform-join / add / update / remove / stats requests over a
// unix-domain socket with snapshot-isolated epochs (serve/server.h has the
// protocol); --watch additionally mirrors a directory's *.csv files into
// the live catalog. --client is the matching one-shot request sender
// (each JSON argument is sent as one frame; responses print one per line).
//
// --gen writes a
// synthetic demo corpus (joinable pairs + noise tables) to a directory;
// --selftest runs a set of named end-to-end checks on an in-memory corpus,
// prints each failing check by name, and exits with the number of failed
// checks (used as a ctest smoke test).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "common/failpoint.h"
#include "common/simd.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "corpus/catalog.h"
#include "corpus/corpus_discovery.h"
#include "corpus/pair_pruner.h"
#include "datagen/corpus.h"
#include "index/index_cache.h"
#include "serve/client.h"
#include "serve/server.h"
#include "table/csv.h"
#include "table/spill_arena.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <csv-dir> [--threads N] [--min-containment F]\n"
      "          [--max-candidates N] [--support F] [--top K]\n"
      "          [--signatures cache.tj] [--out results.csv]\n"
      "          [--spill-dir DIR] [--memory-budget BYTES]\n"
      "          [--index-cache-budget BYTES]\n"
      "          [--lsh] [--lsh-bands N] [--lsh-rows N]\n"
      "          [--failpoints SPEC]\n"
      "          [--add FILE]... [--remove NAME]... [--update FILE]...\n"
      "       %s <csv-dir> --serve SOCKET [--watch DIR] [options]\n"
      "       %s --client SOCKET JSON...\n"
      "       %s --gen <dir> [--tables N] [--rows N] [--seed S]\n"
      "       %s --selftest\n"
      "  --simd scalar|avx2|auto: pin the kernel dispatch level (any mode;\n"
      "      'auto' = best the CPU supports; kernels are bit-identical\n"
      "      across levels, so this only changes speed)\n"
      "  --threads N: pair-level worker threads (0 = all cores, default)\n"
      "  --min-containment F: sketch containment pruning floor "
      "(default 0.05; 0 = brute force)\n"
      "  --signatures F: load/save the column sketch cache (v2: stale\n"
      "      entries self-invalidate via per-table fingerprints)\n"
      "  --spill-dir DIR: land table bytes in mmap-backed files under DIR\n"
      "      (out-of-core catalogs; ingest streams block-wise)\n"
      "  --memory-budget BYTES: resident cell-byte budget (k/m/g suffixes\n"
      "      ok); cold tables are evicted to their spill files and\n"
      "      re-mapped on access. Requires --spill-dir\n"
      "  --index-cache-budget BYTES: byte budget for the per-column\n"
      "      inverted-index cache shared across pair evaluations (default\n"
      "      256m, 0 = unlimited); in serve mode, each snapshot's\n"
      "      per-epoch cache budget\n"
      "  --add F / --remove NAME / --update F: incremental catalog\n"
      "      maintenance; only the touched table's pairs are rescored\n"
      "  --lsh: band the MinHash sketches into bucket keys so incremental\n"
      "      adds exact-score only bucket-colliding columns instead of the\n"
      "      whole catalog (default banding 128x1 is lossless at any\n"
      "      positive --min-containment floor)\n"
      "  --lsh-bands N / --lsh-rows N: banding geometry (bands x rows per\n"
      "      band; coarser settings trade recall for fewer probes)\n"
      "  --failpoints SPEC: arm fault-injection sites, e.g.\n"
      "      'mmap/sync=p:0.5,errno:EIO;mmap/ftruncate=errno:ENOSPC'\n"
      "      (requires a -DTJ_FAILPOINTS=ON build)\n"
      "  --serve SOCKET: run as tjd, answering joinable/transform-join/\n"
      "      add/update/remove/stats requests over the unix socket\n"
      "      (length-prefixed JSON frames; snapshot-isolated epochs)\n"
      "  --watch DIR: with --serve, mirror DIR's *.csv files into the\n"
      "      live catalog (debounced; add/update/remove by file stem)\n"
      "  --client SOCKET JSON...: send each JSON argument as one request\n"
      "      to a running daemon and print each response on its own line\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int GenerateDemoCorpus(const std::string& dir, size_t tables, size_t rows,
                       uint64_t seed) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  tj::SynthCorpusOptions options;
  // `tables` counts total tables: 2 per joinable pair plus ~20%% noise.
  options.num_joinable_pairs = tables >= 4 ? tables * 2 / 5 : 1;
  options.num_noise_tables = tables - 2 * options.num_joinable_pairs;
  options.rows = rows;
  options.seed = seed;
  const tj::SynthCorpus corpus = tj::GenerateSynthCorpus(options);
  for (const tj::Table& table : corpus.tables) {
    const std::string path =
        (fs::path(dir) / (table.name() + ".csv")).string();
    const tj::Status written = tj::WriteCsvFile(table, path);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote %zu tables (%zu joinable pairs, %zu noise) to %s\n",
              corpus.tables.size(), options.num_joinable_pairs,
              options.num_noise_tables, dir.c_str());
  for (const auto& golden : corpus.golden) {
    std::printf("  joinable: %s.csv <-> %s.csv\n",
                corpus.tables[golden.source_table].name().c_str(),
                corpus.tables[golden.target_table].name().c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --selftest: named end-to-end checks. Each check prints its own failure
// detail; the driver prints a per-check verdict line so a ctest log
// pinpoints exactly which guarantee regressed.
// ---------------------------------------------------------------------------

tj::SynthCorpus SelfTestCorpus() {
  tj::SynthCorpusOptions corpus_options;
  corpus_options.num_joinable_pairs = 4;
  corpus_options.num_noise_tables = 2;
  corpus_options.rows = 30;
  corpus_options.seed = 5;
  return tj::GenerateSynthCorpus(corpus_options);
}

bool BuildSelfTestCatalog(const tj::SynthCorpus& corpus,
                          tj::TableCatalog* catalog) {
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog->AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "  %s\n", added.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

/// Pruning + golden recall of the end-to-end pipeline (the original smoke
/// check, split so failures name the broken half).
bool CheckPruningRatio(const tj::CorpusDiscoveryResult& result) {
  if (result.PruningRatio() < 0.5) {
    std::fprintf(stderr, "  expected >= 50%% pruning, got %.1f%%\n",
                 100.0 * result.PruningRatio());
    return false;
  }
  return true;
}

bool CheckGoldenJoins(const tj::SynthCorpus& corpus,
                      const tj::CorpusDiscoveryResult& result) {
  bool ok = true;
  for (const auto& golden : corpus.golden) {
    bool found = false;
    for (const tj::CorpusPairResult& pair : result.results) {
      const bool matches =
          (pair.source.table == golden.source_table &&
           pair.target.table == golden.target_table) ||
          (pair.source.table == golden.target_table &&
           pair.target.table == golden.source_table);
      if (matches && pair.joined_rows > 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "  golden pair %s <-> %s not joined\n",
                   corpus.tables[golden.source_table].name().c_str(),
                   corpus.tables[golden.target_table].name().c_str());
      ok = false;
    }
  }
  return ok;
}

/// Incremental add/remove must match a from-scratch shortlist rebuild.
bool CheckIncrementalEquivalence(const tj::SynthCorpus& corpus) {
  tj::TableCatalog catalog;
  if (!BuildSelfTestCatalog(corpus, &catalog)) return false;
  catalog.ComputeSignatures();
  const tj::PairPrunerOptions pruner_options;
  tj::IncrementalPairPruner pruner(pruner_options);
  pruner.Rebuild(catalog);

  // Add a table from a differently-prefixed corpus, remove one original.
  tj::SynthCorpusOptions extra_options;
  extra_options.num_joinable_pairs = 1;
  extra_options.num_noise_tables = 0;
  extra_options.rows = 30;
  extra_options.seed = 99;
  extra_options.name_prefix = "inc";
  const tj::SynthCorpus extra = tj::GenerateSynthCorpus(extra_options);

  auto added = catalog.AddTable(extra.tables[0]);
  if (!added.ok()) {
    std::fprintf(stderr, "  %s\n", added.status().ToString().c_str());
    return false;
  }
  catalog.ComputeSignatures();
  pruner.OnTableAdded(catalog, *added);

  const std::string removed_name = corpus.tables[0].name();
  auto removed_id = catalog.TableIndex(removed_name);
  if (!removed_id.ok() || !catalog.RemoveTable(removed_name).ok()) {
    std::fprintf(stderr, "  cannot remove %s\n", removed_name.c_str());
    return false;
  }
  pruner.OnTableRemoved(*removed_id);

  const tj::PairPrunerResult incremental = pruner.Snapshot();
  const tj::PairPrunerResult scratch =
      tj::ShortlistPairs(catalog, pruner_options);
  if (incremental.total_pairs != scratch.total_pairs ||
      incremental.pruned_pairs != scratch.pruned_pairs ||
      incremental.shortlist.size() != scratch.shortlist.size()) {
    std::fprintf(stderr,
                 "  totals diverge: incremental %zu/%zu/%zu vs scratch "
                 "%zu/%zu/%zu\n",
                 incremental.total_pairs, incremental.pruned_pairs,
                 incremental.shortlist.size(), scratch.total_pairs,
                 scratch.pruned_pairs, scratch.shortlist.size());
    return false;
  }
  for (size_t i = 0; i < scratch.shortlist.size(); ++i) {
    const tj::ColumnPairCandidate& x = incremental.shortlist[i];
    const tj::ColumnPairCandidate& y = scratch.shortlist[i];
    if (!(x.a == y.a) || !(x.b == y.b) || x.score != y.score ||
        x.a_is_source != y.a_is_source) {
      std::fprintf(stderr, "  shortlist diverges at rank %zu\n", i);
      return false;
    }
  }
  return true;
}

/// The v2 signature cache must round-trip, and a stale entry (table content
/// changed since the cache was written) must self-invalidate on reload.
bool CheckCacheInvalidation(const tj::SynthCorpus& corpus) {
  tj::TableCatalog catalog;
  if (!BuildSelfTestCatalog(corpus, &catalog)) return false;
  catalog.ComputeSignatures();
  const std::string dump = catalog.SerializeSignatures();

  tj::TableCatalog reloaded;
  if (!BuildSelfTestCatalog(corpus, &reloaded)) return false;
  const tj::Status loaded = reloaded.LoadSignatures(dump);
  if (!loaded.ok()) {
    std::fprintf(stderr, "  round-trip load failed: %s\n",
                 loaded.ToString().c_str());
    return false;
  }
  for (const tj::ColumnRef ref : reloaded.AllColumns()) {
    if (!reloaded.HasSignature(ref)) {
      std::fprintf(stderr, "  round-trip left a column unsigned\n");
      return false;
    }
  }

  // Mutate one table: its cache block must be skipped on reload.
  tj::TableCatalog stale;
  if (!BuildSelfTestCatalog(corpus, &stale)) return false;
  tj::Table mutated = corpus.tables[0];
  mutated.mutable_column(0).Set(0, "mutated-cell-value");
  if (!stale.UpdateTable(std::move(mutated)).ok()) {
    std::fprintf(stderr, "  UpdateTable failed\n");
    return false;
  }
  const tj::Status stale_load = stale.LoadSignatures(dump);
  if (!stale_load.ok()) {
    std::fprintf(stderr, "  stale load should skip, not fail: %s\n",
                 stale_load.ToString().c_str());
    return false;
  }
  auto mutated_id = stale.TableIndex(corpus.tables[0].name());
  if (!mutated_id.ok()) return false;
  if (stale.HasSignature(tj::ColumnRef{*mutated_id, 0})) {
    std::fprintf(stderr,
                 "  stale sketch was served for a mutated table\n");
    return false;
  }

  // Malformed input fails closed.
  if (stale.LoadSignatures("# tj-signatures v2\ngarbage\n").ok()) {
    std::fprintf(stderr, "  malformed dump was accepted\n");
    return false;
  }
  return true;
}

int SelfTest() {
  const tj::SynthCorpus corpus = SelfTestCorpus();
  tj::TableCatalog catalog;
  if (!BuildSelfTestCatalog(corpus, &catalog)) {
    std::fprintf(stderr, "selftest: cannot build catalog\n");
    return 1;
  }
  tj::CorpusDiscoveryOptions options;
  options.num_threads = 2;
  const tj::CorpusDiscoveryResult result =
      tj::DiscoverJoinableColumns(&catalog, options);
  std::printf("%s", result.Describe(catalog).c_str());

  struct Check {
    const char* name;
    bool passed;
  };
  const Check checks[] = {
      {"pruning-ratio", CheckPruningRatio(result)},
      {"golden-joins", CheckGoldenJoins(corpus, result)},
      {"incremental-equivalence", CheckIncrementalEquivalence(corpus)},
      {"cache-invalidation", CheckCacheInvalidation(corpus)},
  };
  int failed = 0;
  for (const Check& check : checks) {
    std::printf("selftest check %-26s %s\n", check.name,
                check.passed ? "OK" : "FAIL");
    if (!check.passed) ++failed;
  }
  if (failed != 0) {
    std::fprintf(stderr, "selftest: %d check(s) failed\n", failed);
    return failed;
  }
  std::printf("selftest: OK (%zu pairs evaluated, %.1f%% pruned)\n",
              result.results.size(), 100.0 * result.PruningRatio());
  return 0;
}

struct MaintenanceOp {
  enum Kind { kAdd, kRemove, kUpdate } kind;
  std::string arg;  // CSV path for add/update, table name for remove
};

// ---------------------------------------------------------------------------
// --client: one-shot request sender for a running daemon.
// ---------------------------------------------------------------------------

int RunClient(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s --client SOCKET JSON...\n", argv[0]);
    return 2;
  }
  tj::serve::ServeClient client;
  const tj::Status connected = client.Connect(argv[2]);
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  int failed = 0;
  for (int i = 3; i < argc; ++i) {
    const auto response = client.CallRaw(argv[i]);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->c_str());
    // Reflect protocol-level failures in the exit code so shell scripts
    // can branch on them without parsing JSON.
    const auto parsed = tj::serve::JsonValue::Parse(*response);
    if (parsed.ok()) {
      const tj::serve::JsonValue* ok = parsed->Find("ok");
      if (ok != nullptr && ok->is_bool() && !ok->AsBool()) ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --serve: the tjd daemon loop.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_signal_stop = 0;

void OnStopSignal(int) { g_signal_stop = 1; }

int RunDaemon(tj::TableCatalog* catalog, tj::serve::ServeOptions options,
              int num_threads) {
  // One pool for the daemon's whole life: signatures, shortlist
  // maintenance, and every served query's per-pair fan-out (all serialized
  // by the server's compute gate).
  tj::ThreadPool pool(num_threads);
  tj::serve::CorpusServer server(catalog, &pool, std::move(options));
  const tj::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  const auto snapshot = server.current_snapshot();
  std::printf("tjd: serving %zu tables (%zu columns, %zu shortlisted "
              "pairs) at epoch %llu\n",
              snapshot->num_tables(), snapshot->num_columns(),
              snapshot->shortlist().shortlist.size(),
              static_cast<unsigned long long>(snapshot->epoch()));
  // WaitFor instead of Wait: a signal handler can only set a flag, so the
  // main thread has to poll it between condition waits.
  while (g_signal_stop == 0 && !server.WaitFor(200)) {
  }
  std::printf("tjd: shutting down (served %llu queries, applied %llu "
              "mutations)\n",
              static_cast<unsigned long long>(server.queries_served()),
              static_cast<unsigned long long>(server.mutations_applied()));
  server.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tj;

  // --simd applies in every mode (discovery, serve, gen, selftest), so it
  // is stripped from argv before the per-mode parsers run.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--simd") != 0) continue;
    simd::SimdLevel level;
    if (i + 1 >= argc || !simd::ParseSimdLevel(argv[i + 1], &level)) {
      std::fprintf(stderr, "--simd wants scalar|avx2|auto\n");
      return 2;
    }
    const simd::SimdLevel installed = simd::SetActiveLevel(level);
    if (installed != level) {
      std::fprintf(stderr, "note: --simd %s unsupported here; using %s\n",
                   argv[i + 1], simd::SimdLevelName(installed));
    }
    for (int j = i + 2; j < argc; ++j) argv[j - 2] = argv[j];
    argc -= 2;
    --i;
  }

  if (argc < 2) return Usage(argv[0]);

  if (std::strcmp(argv[1], "--selftest") == 0) return SelfTest();
  if (std::strcmp(argv[1], "--client") == 0) return RunClient(argc, argv);

  if (std::strcmp(argv[1], "--gen") == 0) {
    if (argc < 3) return Usage(argv[0]);
    const std::string dir = argv[2];
    size_t tables = 10;
    size_t rows = 40;
    uint64_t seed = 1;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--tables") == 0 && i + 1 < argc) {
        tables = static_cast<size_t>(std::atol(argv[++i]));
      } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
        rows = static_cast<size_t>(std::atol(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else {
        return Usage(argv[0]);
      }
    }
    if (tables < 2 || rows == 0) return Usage(argv[0]);
    return GenerateDemoCorpus(dir, tables, rows, seed);
  }

  const std::string dir = argv[1];
  CorpusDiscoveryOptions options;
  options.num_threads = 0;  // all cores
  size_t top = 20;
  std::string signatures_path;
  std::string out_path;
  std::string serve_socket;
  std::string watch_dir;
  StorageOptions storage;
  size_t index_cache_budget = serve::kDefaultIndexCacheBudgetBytes;
  std::vector<MaintenanceOp> ops;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_socket = argv[++i];
    } else if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      storage.spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 &&
               i + 1 < argc) {
      if (!ParseByteSize(argv[++i], &storage.memory_budget_bytes)) {
        std::fprintf(stderr, "invalid --memory-budget value '%s'\n",
                     argv[i]);
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--index-cache-budget") == 0 &&
               i + 1 < argc) {
      if (!ParseByteSize(argv[++i], &index_cache_budget)) {
        std::fprintf(stderr, "invalid --index-cache-budget value '%s'\n",
                     argv[i]);
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--min-containment") == 0 &&
               i + 1 < argc) {
      options.pruner.min_containment = std::atof(argv[++i]);
      if (options.pruner.min_containment <= 0.0) {
        options.pruner.require_charset_overlap = false;  // true brute force
      }
    } else if (std::strcmp(argv[i], "--max-candidates") == 0 &&
               i + 1 < argc) {
      options.pruner.max_candidates =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--lsh") == 0) {
      options.pruner.lsh.enabled = true;
    } else if (std::strcmp(argv[i], "--lsh-bands") == 0 && i + 1 < argc) {
      options.pruner.lsh.enabled = true;
      options.pruner.lsh.bands = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--lsh-rows") == 0 && i + 1 < argc) {
      options.pruner.lsh.enabled = true;
      options.pruner.lsh.rows_per_band =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--support") == 0 && i + 1 < argc) {
      options.join.min_join_support = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--signatures") == 0 && i + 1 < argc) {
      signatures_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--add") == 0 && i + 1 < argc) {
      ops.push_back({MaintenanceOp::kAdd, argv[++i]});
    } else if (std::strcmp(argv[i], "--remove") == 0 && i + 1 < argc) {
      ops.push_back({MaintenanceOp::kRemove, argv[++i]});
    } else if (std::strcmp(argv[i], "--update") == 0 && i + 1 < argc) {
      ops.push_back({MaintenanceOp::kUpdate, argv[++i]});
    } else if (std::strcmp(argv[i], "--failpoints") == 0 && i + 1 < argc) {
      if (!failpoint::CompiledIn()) {
        std::fprintf(stderr,
                     "--failpoints requires a -DTJ_FAILPOINTS=ON build\n");
        return 2;
      }
      const Status armed = failpoint::ConfigureFromSpec(argv[++i]);
      if (!armed.ok()) {
        std::fprintf(stderr, "invalid --failpoints spec: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }

  // Reject malformed configuration up front with a message instead of a
  // downstream TJ_CHECK abort: the same ValidateOptions surface the daemon
  // uses to turn bad client requests into error responses.
  {
    const Status valid_discovery = ValidateOptions(options);
    if (!valid_discovery.ok()) {
      std::fprintf(stderr, "invalid options: %s\n",
                   valid_discovery.ToString().c_str());
      return 2;
    }
    const Status valid_storage = ValidateOptions(storage);
    if (!valid_storage.ok()) {
      std::fprintf(stderr, "invalid options: %s\n",
                   valid_storage.ToString().c_str());
      return 2;
    }
  }
  if (options.pruner.lsh.enabled &&
      !LshIndex::GuaranteesRecall(options.pruner.lsh,
                                  SignatureOptions().num_hashes,
                                  options.pruner.min_containment)) {
    std::fprintf(stderr,
                 "note: --lsh banding %zux%zu at floor %g is approximate; "
                 "low-overlap pairs may be missed (128x1 with a positive "
                 "floor is lossless)\n",
                 options.pruner.lsh.bands, options.pruner.lsh.rows_per_band,
                 options.pruner.min_containment);
  }
  if (!watch_dir.empty() && serve_socket.empty()) {
    std::fprintf(stderr, "--watch requires --serve\n");
    return Usage(argv[0]);
  }
  if (!serve_socket.empty() && !ops.empty()) {
    std::fprintf(stderr,
                 "--add/--remove/--update are client requests in serve "
                 "mode; use --client\n");
    return Usage(argv[0]);
  }
  if (storage.spill_enabled()) {
    const Status spill_ready = EnsureSpillDir(storage.spill_dir);
    if (!spill_ready.ok()) {
      std::fprintf(stderr, "error: %s\n", spill_ready.ToString().c_str());
      return 1;
    }
  }

  TableCatalog catalog(SignatureOptions(), storage);
  const auto loaded_dir = catalog.AddCsvDirectory(dir);
  if (!loaded_dir.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", dir.c_str(),
                 loaded_dir.status().ToString().c_str());
    return 1;
  }
  if (loaded_dir->skipped > 0) {
    std::fprintf(stderr,
                 "warning: skipped %zu unreadable file(s) under %s\n",
                 loaded_dir->skipped, dir.c_str());
  }
  // The 2-table floor is checked after the --add/--remove/--update ops run:
  // an --add may bootstrap a 1-table directory into a valid catalog.
  std::printf("catalog: %zu tables, %zu columns", catalog.num_tables(),
              catalog.num_columns());
  if (storage.spill_enabled()) {
    std::printf(" (%zu bytes spilled, %zu resident)",
                catalog.SpilledBytes(), catalog.ResidentCellBytes());
  }
  std::printf("\n");

  if (!signatures_path.empty() &&
      std::filesystem::exists(signatures_path)) {
    const Status loaded = catalog.LoadSignaturesFromFile(signatures_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "ignoring signature cache %s: %s\n",
                   signatures_path.c_str(), loaded.ToString().c_str());
    } else {
      std::printf("loaded signature cache from %s\n",
                  signatures_path.c_str());
    }
  }

  if (!serve_socket.empty()) {
    serve::ServeOptions serve_options;
    serve_options.socket_path = serve_socket;
    serve_options.watch_dir = watch_dir;
    serve_options.discovery = options;
    serve_options.index_cache_budget_bytes = index_cache_budget;
    return RunDaemon(&catalog, std::move(serve_options),
                     options.num_threads);
  }

  // One cache spans the whole invocation: the batch run's pre-warm, or —
  // in the incremental flow — every post-maintenance shortlist evaluation.
  IndexCache index_cache(index_cache_budget);
  options.index_cache = &index_cache;

  CorpusDiscoveryResult result;
  if (ops.empty()) {
    if (catalog.num_tables() < 2) {
      std::fprintf(stderr, "%s holds %zu table(s); need at least 2\n",
                   dir.c_str(), catalog.num_tables());
      return 1;
    }
    result = DiscoverJoinableColumns(&catalog, options);
  } else {
    // Incremental flow: build the shortlist once, then fold each
    // maintenance op in by rescoring only the touched table's pairs.
    ThreadPool pool(options.num_threads);
    catalog.ComputeSignatures(&pool);
    IncrementalPairPruner pruner(options.pruner);
    pruner.Rebuild(catalog, &pool);
    for (const MaintenanceOp& op : ops) {
      if (op.kind == MaintenanceOp::kRemove) {
        auto id = catalog.TableIndex(op.arg);
        if (!id.ok() || !catalog.RemoveTable(op.arg).ok()) {
          std::fprintf(stderr, "--remove %s: no such table\n",
                       op.arg.c_str());
          return 1;
        }
        pruner.OnTableRemoved(*id);
        std::printf("removed %s (no rescoring)\n", op.arg.c_str());
        continue;
      }
      auto table = ReadCsvFile(op.arg, CsvOptions(), storage);
      if (!table.ok()) {
        std::fprintf(stderr, "%s: %s\n", op.arg.c_str(),
                     table.status().ToString().c_str());
        return 1;
      }
      table->set_name(std::filesystem::path(op.arg).stem().string());
      if (op.kind == MaintenanceOp::kAdd) {
        auto id = catalog.AddTable(*std::move(table));
        if (!id.ok()) {
          std::fprintf(stderr, "--add %s: %s\n", op.arg.c_str(),
                       id.status().ToString().c_str());
          return 1;
        }
        catalog.ComputeSignatures(&pool);
        pruner.OnTableAdded(catalog, *id, &pool);
        std::printf("added %s: scored %zu column pairs\n", op.arg.c_str(),
                    pruner.last_scored_pairs());
      } else {
        auto id = catalog.UpdateTable(*std::move(table));
        if (!id.ok()) {
          std::fprintf(stderr, "--update %s: %s\n", op.arg.c_str(),
                       id.status().ToString().c_str());
          return 1;
        }
        catalog.ComputeSignatures(&pool);
        pruner.OnTableUpdated(catalog, *id, &pool);
        std::printf("updated %s: rescored %zu column pairs\n",
                    op.arg.c_str(), pruner.last_scored_pairs());
      }
    }
    if (catalog.num_tables() < 2) {
      std::fprintf(stderr,
                   "catalog holds %zu table(s) after maintenance ops; need "
                   "at least 2\n",
                   catalog.num_tables());
      return 1;
    }
    // Reuse the maintenance pool so the whole incremental run — sketches,
    // rescoring, and the pair-level fan-out — stays on exactly one pool.
    result = EvaluateShortlist(catalog, pruner.Snapshot(), options, &pool);
  }

  if (!signatures_path.empty()) {
    const Status saved = catalog.SaveSignaturesToFile(signatures_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "error saving signature cache: %s\n",
                   saved.ToString().c_str());
    }
  }

  std::printf("column pairs: %zu total, %zu pruned (%.1f%%), %zu evaluated\n",
              result.total_column_pairs, result.pruned_pairs,
              100.0 * result.PruningRatio(), result.results.size());
  const IndexCacheStats cache_stats = index_cache.GetStats();
  std::printf("index cache: %llu hits, %llu misses, %llu evictions, "
              "%llu bytes\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.evictions),
              static_cast<unsigned long long>(cache_stats.bytes));
  TablePrinter printer({"rank", "source", "target", "score", "pairs",
                        "joined", "coverage", "best transformation"});
  const size_t n = std::min(top, result.results.size());
  for (size_t i = 0; i < n; ++i) {
    const CorpusPairResult& r = result.results[i];
    printer.AddRow(
        {StrPrintf("%zu", i + 1),
         catalog.table(r.source.table).name() + "." +
             catalog.column(r.source).name(),
         catalog.table(r.target.table).name() + "." +
             catalog.column(r.target).name(),
         FormatDouble(r.candidate.score, 3), StrPrintf("%zu", r.learning_pairs),
         StrPrintf("%zu", r.joined_rows), FormatDouble(r.top_coverage, 2),
         r.transformations.empty() ? "-" : r.transformations.front()});
  }
  printer.Print();

  if (!out_path.empty()) {
    Table out("corpus_results");
    Column source("source"), target("target"), score("score"),
        pairs("learning_pairs"), joined("joined_rows"), cov("top_coverage"),
        rules("transformations");
    for (const CorpusPairResult& r : result.results) {
      source.Append(catalog.table(r.source.table).name() + "." +
                    catalog.column(r.source).name());
      target.Append(catalog.table(r.target.table).name() + "." +
                    catalog.column(r.target).name());
      score.Append(StrPrintf("%.6f", r.candidate.score));
      pairs.Append(StrPrintf("%zu", r.learning_pairs));
      joined.Append(StrPrintf("%zu", r.joined_rows));
      cov.Append(StrPrintf("%.4f", r.top_coverage));
      rules.Append(JoinStrings(r.transformations, " ; "));
    }
    for (Column* c : {&source, &target, &score, &pairs, &joined, &cov,
                      &rules}) {
      if (!out.AddColumn(std::move(*c)).ok()) {
        std::fprintf(stderr, "internal error assembling output\n");
        return 1;
      }
    }
    const Status written = WriteCsvFile(out, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", out_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("results written to %s\n", out_path.c_str());
  }
  return 0;
}
