// The open-data scenario (paper §6.1): joining noisy directory-style
// addresses with assessment-style addresses. Demonstrates the scaling tools
// the paper develops — candidate-pair sampling (§5.3) and a minimum support
// threshold on transformations (§6.4) — on a dataset where n-gram matching
// produces ~99% false candidate pairs.

#include <cstdio>

#include "datagen/opendata.h"
#include "join/join_engine.h"
#include "match/row_matcher.h"

int main() {
  using namespace tj;

  OpenDataOptions data_options;
  data_options.num_rows = 400;
  const TablePair pair = GenerateOpenData(data_options);
  std::printf("source rows: %zu, target rows: %zu, golden pairs: %zu\n",
              pair.source.num_rows(), pair.target.num_rows(),
              pair.golden.size());

  // Show how noisy raw candidate matching is on this data.
  const RowMatchResult raw = FindJoinablePairs(
      pair.SourceColumn(), pair.TargetColumn(), RowMatchOptions());
  const PrfMetrics raw_metrics = EvaluatePairs(raw.pairs, pair.golden);
  std::printf("raw n-gram candidates: %zu pairs, %s\n\n", raw.pairs.size(),
              FormatPrf(raw_metrics).c_str());

  // Sampling + support threshold let discovery recover from the noise.
  JoinOptions options;
  options.matching = MatchingMode::kNgram;
  options.sample_pairs = 800;  // learn from a sample of the noisy candidates
  options.discovery.min_support_fraction = 0.01;
  // The paper uses 2% on its open data; our simulated false pairs are more
  // structurally co-coverable (tiny digit vocabulary), so junk rules need a
  // slightly higher bar (see DESIGN.md §4).
  options.min_join_support = 0.05;

  const JoinResult result = TransformJoin(pair, options);
  std::printf("learned from %zu sampled pairs in %.2fs\n",
              result.learning_pairs, result.discovery_seconds);
  std::printf("transformations above support:\n");
  for (const auto& t : result.applied_transformations) {
    std::printf("  %s\n", t.c_str());
  }
  std::printf("\nend-to-end join: %s (%zu pairs)\n",
              FormatPrf(result.metrics).c_str(), result.joined.size());
  std::printf("(paper shape: high precision, moderate recall — uncoverable "
              "abbreviation\nschemes cap recall, support threshold keeps "
              "precision high)\n");
  return 0;
}
