// Quickstart: discover transformations that make two differently-formatted
// columns equi-joinable (the paper's Figure 1 name example).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/discovery.h"

int main() {
  using namespace tj;

  // Joinable row pairs whose values are formatted differently. In a real
  // pipeline these come from the row matcher (see the join examples); here
  // they are given, like training examples.
  const std::vector<ExamplePair> rows = {
      {"prus-czarnecki, andrzej", "a prus-czarnecki"},
      {"bowling, michael", "m bowling"},
      {"gosgnach, simon", "s gosgnach"},
      {"rafiei, davood", "d rafiei"},
  };

  // Run discovery with the paper's default configuration (3 placeholders,
  // TwoCharSplitSubstr off).
  const DiscoveryResult result =
      DiscoverTransformations(rows, DiscoveryOptions());

  std::printf("input rows:            %zu\n", result.num_rows);
  std::printf("generated candidates:  %llu\n",
              static_cast<unsigned long long>(
                  result.stats.generated_transformations));
  std::printf("unique after dedup:    %llu\n",
              static_cast<unsigned long long>(
                  result.stats.unique_transformations));
  std::printf("cache hit ratio:       %.1f%%\n\n",
              100.0 * result.stats.CacheHitRatio());

  // The best single transformation (maximum-coverage variant of the
  // problem) ...
  const auto& best = result.top[0];
  const Transformation& t = result.store.Get(best.id);
  std::printf("best transformation (%u/%zu rows):\n  %s\n\n", best.coverage,
              result.num_rows, t.ToString(result.units).c_str());

  // ... generalizes to unseen rows:
  const auto mapped = t.Apply("nascimento, mario", result.units);
  std::printf("applied to \"nascimento, mario\": \"%s\"\n\n",
              mapped.value_or("<failed>").c_str());

  // The greedy minimal covering set (covering-set variant).
  std::printf("covering set (%zu transformation(s), coverage %.2f):\n",
              result.cover.selected.size(),
              result.CoverSetCoverageFraction());
  for (const auto& ranked : result.cover.selected) {
    std::printf("  [%u rows] %s\n", ranked.coverage,
                result.store.Get(ranked.id).ToString(result.units).c_str());
  }
  return 0;
}
