// Table 4 — Pruning performance: generated vs to-try transformations,
// duplicate ratio, and negative-unit-cache hit ratio, under both matchings.
//
// Paper shape: roughly half of generated transformations are duplicates on
// real data; cache hit ratios exceed 50% everywhere and 90% on synthetic and
// open data.

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

void RunPanel(const std::vector<BenchDataset>& suite, MatchingMode matching,
              ThreadPool* pool, const char* title) {
  std::printf("-- %s --\n", title);
  TablePrinter table({"Dataset", "Generated trans.", "Trans. to try",
                      "Duplicate trans.", "Cache hit ratio"});
  for (const BenchDataset& dataset : suite) {
    std::vector<double> generated;
    std::vector<double> unique;
    std::vector<double> dup_ratio;
    std::vector<double> hit_ratio;
    for (const DiscoveryEval& eval :
         EvaluateDiscoveryAll(dataset, matching, pool)) {
      generated.push_back(
          static_cast<double>(eval.stats.generated_transformations));
      unique.push_back(static_cast<double>(eval.stats.unique_transformations));
      dup_ratio.push_back(eval.stats.DuplicateRatio());
      hit_ratio.push_back(eval.stats.CacheHitRatio());
    }
    table.AddRow({dataset.name, FormatDouble(Mean(generated), 1),
                  FormatDouble(Mean(unique), 1),
                  StrPrintf("%.1f%%", 100.0 * Mean(dup_ratio)),
                  StrPrintf("%.1f%%", 100.0 * Mean(hit_ratio))});
  }
  table.Print();
  std::printf("\n");
}

void Run() {
  std::printf("== Table 4: Pruning performance ==\n\n");
  const SuiteOptions options = SuiteOptionsFromEnv();
  const std::vector<BenchDataset> suite = BuildSuite(options);
  ThreadPool pool(options.num_threads);
  RunPanel(suite, MatchingMode::kNgram, &pool, "N-gram row matching");
  RunPanel(suite, MatchingMode::kGolden, &pool, "Golden row matching");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
