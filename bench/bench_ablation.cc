// Ablation bench — the design choices DESIGN.md §6 calls out:
//   1. transformation dedup (hash-consing)      [Table 4, col 1-3]
//   2. negative-unit cache                      [§6.6: runtime drops to 61%]
//   3. placeholder tokenization (Lemma 4)       [§4.1.3]
//   4. placeholder cap p in {2, 3, 4}           [§6.2 trade-off]
// Each variant runs the same synthetic workload; coverage should stay
// identical for 1-2 (pure pruning) and may change for 3-4 (search space).

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "core/discovery.h"
#include "datagen/synth.h"
#include "datagen/webtables.h"

namespace tj {
namespace {

struct Variant {
  const char* name;
  DiscoveryOptions options;
};

void RunOn(const char* dataset_name,
           const std::vector<std::vector<ExamplePair>>& tables) {
  std::printf("-- %s --\n", dataset_name);
  std::vector<Variant> variants;
  variants.push_back({"full", DiscoveryOptions()});
  {
    DiscoveryOptions o;
    o.enable_dedup = false;
    variants.push_back({"no-dedup", o});
  }
  {
    DiscoveryOptions o;
    o.enable_neg_cache = false;
    variants.push_back({"no-neg-cache", o});
  }
  {
    DiscoveryOptions o;
    o.tokenize_placeholders = false;
    variants.push_back({"no-tokenize", o});
  }
  for (int p : {2, 4}) {
    DiscoveryOptions o;
    o.max_placeholders = p;
    variants.push_back({p == 2 ? "p=2" : "p=4", o});
  }

  TablePrinter table({"variant", "time", "unique trans", "evals", "top cov",
                      "coverage", "#sets"});
  for (const Variant& variant : variants) {
    double seconds = 0.0;
    double unique = 0.0;
    double evals = 0.0;
    std::vector<double> top;
    std::vector<double> cover;
    std::vector<double> sets;
    for (const auto& rows : tables) {
      const DiscoveryResult result =
          DiscoverTransformations(rows, variant.options);
      seconds += result.stats.time_total;
      unique += static_cast<double>(result.stats.unique_transformations);
      evals += static_cast<double>(result.stats.full_evaluations);
      top.push_back(result.TopCoverageFraction());
      cover.push_back(result.CoverSetCoverageFraction());
      sets.push_back(static_cast<double>(result.cover.selected.size()));
    }
    table.AddRow({variant.name, FormatSeconds(seconds),
                  FormatDouble(unique, 0), FormatDouble(evals, 0),
                  FormatDouble(Mean(top), 2), FormatDouble(Mean(cover), 2),
                  FormatDouble(Mean(sets), 1)});
  }
  table.Print();
  std::printf("\n");
}

void Run() {
  std::printf("== Ablation: pruning strategies and placeholder cap ==\n\n");
  const SuiteOptions suite_options = SuiteOptionsFromEnv();

  // Synthetic workload (dedup ablation needs a modest size: without
  // hash-consing every duplicate is re-applied to every row).
  {
    const auto rows =
        static_cast<size_t>(150 * suite_options.scale) < 20
            ? 20
            : static_cast<size_t>(150 * suite_options.scale);
    // The datasets own the arenas the example-pair views point into, so
    // they must outlive RunOn.
    std::vector<SynthDataset> datasets;
    std::vector<std::vector<ExamplePair>> tables;
    for (int i = 0; i < 2; ++i) {
      datasets.push_back(GenerateSynth(SynthN(rows, 51 + i)));
      const SynthDataset& ds = datasets.back();
      tables.push_back(MakeExamplePairs(ds.pair.SourceColumn(),
                                        ds.pair.TargetColumn(),
                                        ds.pair.golden.pairs()));
    }
    RunOn("Synth-150 (2 tables)", tables);
  }

  // A slice of the web-tables benchmark (golden pairs).
  {
    WebTablesOptions options;
    options.num_pairs = 6;
    const std::vector<TablePair> pairs = GenerateWebTables(options);
    std::vector<std::vector<ExamplePair>> tables;
    for (const TablePair& pair : pairs) {
      tables.push_back(MakeExamplePairs(pair.SourceColumn(),
                                        pair.TargetColumn(),
                                        pair.golden.pairs()));
    }
    RunOn("Web tables (6 pairs, golden matching)", tables);
  }
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
