// Table 1 — Row matching performance.
//
// Reproduces: #rows, average join-entry length, candidate pairs, and the
// precision/recall/F1 of n-gram representative row matching (Algorithm 1)
// per dataset. Paper reference values (Table 1):
//   Web tables  P=0.81 R=0.93 F1=0.86      Spreadsheet P=0.95 R=0.93 F1=0.94
//   Open data   P=0.01 R=0.92 F1=0.02      Synth-50    P=1.00 R=0.88 F1=0.94
//   Synth-500   P=0.97 R=0.81 F1=0.87      (L variants slightly higher P/R)

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

void Run() {
  std::printf("== Table 1: Row matching performance ==\n");
  const SuiteOptions options = SuiteOptionsFromEnv();
  const std::vector<BenchDataset> suite = BuildSuite(options);
  // One pool for the whole bench: every dataset fans out per pair on it
  // (metrics are identical at any thread count; only Time moves).
  ThreadPool pool(options.num_threads);
  TablePrinter table({"Dataset", "#Rows", "Avg Len.", "#Pairs", "P", "R",
                      "F1", "Time"});
  for (const BenchDataset& dataset : suite) {
    std::vector<double> rows;
    std::vector<double> avg_len;
    std::vector<double> pairs;
    std::vector<double> precision;
    std::vector<double> recall;
    std::vector<double> f1;
    double seconds = 0.0;
    const std::vector<RowMatchEval> evals =
        EvaluateRowMatchingAll(dataset, &pool);
    for (size_t i = 0; i < evals.size(); ++i) {
      const TablePair& pair = dataset.tables[i];
      const RowMatchEval& eval = evals[i];
      rows.push_back(static_cast<double>(pair.SourceColumn().size()));
      avg_len.push_back(pair.SourceColumn().AverageLength());
      pairs.push_back(static_cast<double>(eval.pairs));
      precision.push_back(eval.metrics.precision);
      recall.push_back(eval.metrics.recall);
      f1.push_back(eval.metrics.f1);
      seconds += eval.seconds;
    }
    table.AddRow({dataset.name, FormatDouble(Mean(rows), 0),
                  FormatDouble(Mean(avg_len), 2),
                  FormatDouble(Mean(pairs), 1),
                  FormatDouble(Mean(precision), 2),
                  FormatDouble(Mean(recall), 2), FormatDouble(Mean(f1), 2),
                  FormatSeconds(seconds)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: near-perfect matching on clean data; open data recalls"
      "\nwell but precision collapses from shared address n-grams.\n\n");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
