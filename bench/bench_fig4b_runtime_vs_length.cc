// Figure 4b — Per-module runtime as the dataset grows horizontally (longer
// rows; row count fixed at 100 as in the paper).
//
// Paper shape: past a certain length, duplicate removal and placeholder
// generation overtake transformation application, because the duplicate
// fraction and the cache hit ratio both climb with length.

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "core/discovery.h"
#include "datagen/synth.h"

namespace tj {
namespace {

void Run() {
  std::printf("== Figure 4b: Runtime breakdown vs input length ==\n\n");
  const SuiteOptions suite_options = SuiteOptionsFromEnv();
  const size_t rows =
      static_cast<size_t>(100 * suite_options.scale) < 10
          ? 10
          : static_cast<size_t>(100 * suite_options.scale);
  SeriesPrinter series("length", {"apply_s", "dedup_s", "placeholder_s",
                                  "unit_extraction_s", "total_s"});
  for (int length = 20; length <= 280; length += 40) {
    SynthOptions options;
    options.num_rows = rows;
    options.min_len = length;
    options.max_len = length;
    options.seed = 7001 + static_cast<uint64_t>(length);
    const SynthDataset ds = GenerateSynth(options);
    const std::vector<ExamplePair> examples = MakeExamplePairs(
        ds.pair.SourceColumn(), ds.pair.TargetColumn(),
        ds.pair.golden.pairs());
    // Raise the per-row generation cap so horizontal growth is visible (the
    // paper's implementation has no such cap; the default 4096 flattens the
    // curve past ~length 100).
    DiscoveryOptions discovery;
    discovery.max_transformations_per_row = 32768;
    const DiscoveryResult result =
        DiscoverTransformations(examples, discovery);
    series.AddPoint(length, {result.stats.time_apply,
                             result.stats.time_duplicate_removal,
                             result.stats.time_placeholder_gen,
                             result.stats.time_unit_extraction,
                             result.stats.time_total});
  }
  series.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
