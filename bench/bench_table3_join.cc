// Table 3 — End-to-end join performance (P/R/F1): our transform-then-join
// vs Auto-FuzzyJoin vs Auto-Join.
//
// Our engine and Auto-Join learn on n-gram-matched pairs, apply the
// discovered transformations with the dataset's minimum join support to the
// whole source column, and equi-join the transformed values; AFJ joins by
// auto-programmed similarity alone. Paper shape: ours wins on F1 everywhere;
// Auto-Join has high precision but poor recall on noisy data; AFJ has no
// transformations and struggles with duplicate-heavy sources.

#include <cstdio>
#include <vector>

#include "baselines/autojoin.h"
#include "baselines/fuzzyjoin.h"
#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "common/strings.h"
#include "common/timer.h"

namespace tj {
namespace {

PrfMetrics RunAutoJoinJoin(const TablePair& pair, const BenchDataset& config) {
  const std::vector<ExamplePair> rows =
      LearningPairs(pair, config, MatchingMode::kNgram);
  AutoJoinOptions options;
  options.time_budget_seconds = config.autojoin_budget_seconds;
  AutoJoinResult result = RunAutoJoin(rows, options);
  const std::vector<RowPair> joined =
      ApplyAndEquiJoin(pair.SourceColumn(), pair.TargetColumn(), result.store,
                       result.units, result.found);
  return EvaluatePairs(joined, pair.golden);
}

void Run() {
  std::printf("== Table 3: End-to-end join (P / R / F1) ==\n\n");
  const std::vector<BenchDataset> suite = BuildSuite(SuiteOptionsFromEnv());
  TablePrinter table({"Dataset", "Ours P", "Ours R", "Ours F", "AFJ P",
                      "AFJ R", "AFJ F", "AJ P", "AJ R", "AJ F"});
  for (const BenchDataset& dataset : suite) {
    std::vector<double> ours_p, ours_r, ours_f;
    std::vector<double> afj_p, afj_r, afj_f;
    std::vector<double> aj_p, aj_r, aj_f;
    for (const TablePair& pair : dataset.tables) {
      JoinOptions options;
      options.matching = MatchingMode::kNgram;
      options.discovery = dataset.discovery;
      options.min_join_support = dataset.join_support;
      options.sample_pairs = dataset.sample_pairs;
      const JoinResult ours = TransformJoin(pair, options);
      ours_p.push_back(ours.metrics.precision);
      ours_r.push_back(ours.metrics.recall);
      ours_f.push_back(ours.metrics.f1);

      const FuzzyJoinResult afj = RunAutoFuzzyJoin(
          pair.SourceColumn(), pair.TargetColumn(), FuzzyJoinOptions());
      const PrfMetrics afj_m = EvaluatePairs(afj.joined, pair.golden);
      afj_p.push_back(afj_m.precision);
      afj_r.push_back(afj_m.recall);
      afj_f.push_back(afj_m.f1);

      const PrfMetrics aj_m = RunAutoJoinJoin(pair, dataset);
      aj_p.push_back(aj_m.precision);
      aj_r.push_back(aj_m.recall);
      aj_f.push_back(aj_m.f1);
    }
    table.AddRow({dataset.name, FormatDouble(Mean(ours_p), 3),
                  FormatDouble(Mean(ours_r), 3), FormatDouble(Mean(ours_f), 3),
                  FormatDouble(Mean(afj_p), 3), FormatDouble(Mean(afj_r), 3),
                  FormatDouble(Mean(afj_f), 3), FormatDouble(Mean(aj_p), 3),
                  FormatDouble(Mean(aj_r), 3), FormatDouble(Mean(aj_f), 3)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
