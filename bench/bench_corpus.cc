// Corpus-scale discovery benchmark: sketch-pruned CorpusDiscovery vs. the
// brute-force all-pairs baseline on a generated synthetic corpus, plus the
// incremental-maintenance comparison — the cost of folding one new table
// into a live IncrementalPairPruner (O(N) scores) vs. rebuilding the
// shortlist from scratch (O(N^2)) — measured at half and full corpus size
// so the scaling exponent is visible. Reports the pruning ratio, wall
// times, and pairs/s, and (with --json PATH) emits a machine-readable
// record so CI can track the perf trajectory.
//
// Environment: TJ_BENCH_SCALE scales the corpus size (1.0 = 10 joinable
// pairs + 4 noise tables at 40 rows); TJ_NUM_THREADS sets the pair-level
// thread count (0 = all cores).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "benchlib/report.h"
#include "benchlib/storage_metrics.h"
#include "common/hash.h"
#include "common/perf_counters.h"
#include "common/simd.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "corpus/catalog.h"
#include "corpus/corpus_discovery.h"
#include "corpus/pair_pruner.h"
#include "datagen/corpus.h"
#include "index/index_cache.h"
#include "serve/client.h"
#include "serve/server.h"
#include "table/csv.h"

namespace {

/// Storage-core metrics for the corpus: total column-arena bytes and the
/// index-build allocation comparison over every column (flat CSR vs the
/// retained map-based reference builder; see benchlib/storage_metrics.h).
tj::StorageMetrics MeasureStorage(const tj::SynthCorpus& corpus) {
  tj::StorageMetrics m;
  for (const tj::Table& table : corpus.tables) {
    m.AddCells(table);
    for (const tj::Column& column : table.columns()) {
      m.MeasureColumn(column);
    }
  }
  return m;
}

struct RunOutcome {
  size_t evaluated_pairs = 0;
  size_t total_pairs = 0;
  double pruning_ratio = 0.0;
  double seconds = 0.0;
  size_t joined_rows = 0;
  size_t pairs_with_rules = 0;
  tj::CorpusDiscoveryResult result;  // kept for cross-backend comparison
};

RunOutcome Run(const tj::SynthCorpus& corpus,
               const tj::CorpusDiscoveryOptions& options) {
  tj::TableCatalog catalog;
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  tj::Stopwatch watch;
  tj::CorpusDiscoveryResult result =
      tj::DiscoverJoinableColumns(&catalog, options);
  RunOutcome outcome;
  outcome.seconds = watch.ElapsedSeconds();
  outcome.evaluated_pairs = result.results.size();
  outcome.total_pairs = result.total_column_pairs;
  outcome.pruning_ratio = result.PruningRatio();
  for (const tj::CorpusPairResult& pair : result.results) {
    outcome.joined_rows += pair.joined_rows;
    if (!pair.transformations.empty()) ++outcome.pairs_with_rules;
  }
  outcome.result = std::move(result);
  return outcome;
}

/// The cross-pair memoization scenario: one catalog, one IndexCache,
/// discovery run twice. The cold pass populates the cache (every distinct
/// shortlisted column builds once); the warm pass — a repeated discovery
/// over the unchanged repository, the QJoin steady state — hits on every
/// index. Both passes must be field-identical to the uncached run (the
/// caller gates on it), so the speedup is provably free of output drift.
struct CachedOutcome {
  RunOutcome cold;
  RunOutcome warm;
  tj::IndexCacheStats stats;  // after the warm pass
};

CachedOutcome RunCached(const tj::SynthCorpus& corpus,
                        const tj::CorpusDiscoveryOptions& base_options,
                        tj::IndexCache* cache) {
  tj::TableCatalog catalog;
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  tj::CorpusDiscoveryOptions options = base_options;
  options.index_cache = cache;

  CachedOutcome outcome;
  const auto pass = [&](RunOutcome* out) {
    tj::Stopwatch watch;
    tj::CorpusDiscoveryResult result =
        tj::DiscoverJoinableColumns(&catalog, options);
    out->seconds = watch.ElapsedSeconds();
    out->evaluated_pairs = result.results.size();
    out->total_pairs = result.total_column_pairs;
    out->pruning_ratio = result.PruningRatio();
    for (const tj::CorpusPairResult& pair : result.results) {
      out->joined_rows += pair.joined_rows;
      if (!pair.transformations.empty()) ++out->pairs_with_rules;
    }
    out->result = std::move(result);
  };
  pass(&outcome.cold);
  pass(&outcome.warm);
  outcome.stats = cache->GetStats();
  return outcome;
}

/// Field-by-field equality of two discovery results — the out-of-core
/// acceptance check: a spilled catalog must produce byte-identical output.
bool SameDiscoveryResults(const tj::CorpusDiscoveryResult& a,
                          const tj::CorpusDiscoveryResult& b) {
  if (a.total_column_pairs != b.total_column_pairs ||
      a.pruned_pairs != b.pruned_pairs ||
      a.results.size() != b.results.size()) {
    return false;
  }
  for (size_t i = 0; i < a.results.size(); ++i) {
    const tj::CorpusPairResult& x = a.results[i];
    const tj::CorpusPairResult& y = b.results[i];
    if (!(x.candidate.a == y.candidate.a) ||
        !(x.candidate.b == y.candidate.b) ||
        x.candidate.score != y.candidate.score ||
        !(x.source == y.source) || !(x.target == y.target) ||
        x.learning_pairs != y.learning_pairs ||
        x.joined_rows != y.joined_rows ||
        x.top_coverage != y.top_coverage ||
        x.transformations != y.transformations) {
      return false;
    }
  }
  return true;
}

struct SpillOutcome {
  size_t total_cell_bytes = 0;   // corpus cell bytes (all in spill files)
  size_t budget_bytes = 0;       // resident budget the catalog enforced
  size_t spilled_bytes = 0;      // spill-file bytes after the run
  size_t rss_growth_bytes = 0;   // RSS delta across the whole phase
  size_t peak_rss_bytes = 0;     // process peak sampled right after the run
  double seconds = 0.0;
  tj::CorpusDiscoveryResult result;
};

/// The out-of-core scenario: the same corpus generated straight into spill
/// files, cataloged under a resident budget of 1/4 of its cell bytes, and
/// discovered end-to-end. Runs BEFORE any in-memory pass so the RSS delta
/// reflects the spilled path alone.
SpillOutcome RunSpilled(const tj::SynthCorpusOptions& corpus_options,
                        const tj::CorpusDiscoveryOptions& options) {
  namespace fs = std::filesystem;
  SpillOutcome outcome;
  const fs::path dir =
      fs::temp_directory_path() /
      tj::StrPrintf("tj-bench-spill-%ld", static_cast<long>(::getpid()));
  const size_t rss_before = tj::CurrentRssBytes();

  // One shared spill dir for generation and catalog: AddTable's
  // AdoptStorage then no-ops (same kind, same directory) instead of
  // re-copying every cell byte into a second set of files.
  tj::SynthCorpusOptions spill_options = corpus_options;
  spill_options.storage.spill_dir = dir.string();
  spill_options.keep_row_ground_truth = false;  // heap-backed; not needed
  tj::SynthCorpus corpus = tj::GenerateSynthCorpus(spill_options);

  for (const tj::Table& table : corpus.tables) {
    outcome.total_cell_bytes += table.ArenaBytes();
  }

  tj::StorageOptions storage = spill_options.storage;
  storage.memory_budget_bytes =
      std::max<size_t>(outcome.total_cell_bytes / 4, 1);
  outcome.budget_bytes = storage.memory_budget_bytes;

  tj::TableCatalog catalog(tj::SignatureOptions(), storage);
  for (tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(std::move(table));
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  corpus.tables.clear();

  tj::Stopwatch watch;
  outcome.result = tj::DiscoverJoinableColumns(&catalog, options);
  outcome.seconds = watch.ElapsedSeconds();
  outcome.spilled_bytes = catalog.SpilledBytes();
  // Sampled before any in-memory pass faults the whole corpus: this is the
  // out-of-core path's actual high-water mark.
  outcome.peak_rss_bytes = tj::PeakRssBytes();
  const size_t rss_after = tj::CurrentRssBytes();
  outcome.rss_growth_bytes =
      rss_after > rss_before ? rss_after - rss_before : 0;

  std::error_code ec;
  fs::remove_all(dir, ec);
  return outcome;
}

struct IncrementalOutcome {
  size_t tables = 0;          // catalog size before the add
  size_t scored_pairs = 0;    // column pairs scored by the incremental add
  double add_seconds = 0.0;   // sketch + incremental rescoring + snapshot
  size_t rebuild_pairs = 0;   // column pairs a from-scratch rebuild scores
  double rebuild_seconds = 0.0;
};

/// Adds one fresh table to a live catalog of `corpus`'s tables and measures
/// the incremental fold-in against a from-scratch ShortlistPairs. Verifies
/// the two shortlists are bit-identical (the incremental contract) before
/// reporting the costs.
IncrementalOutcome MeasureIncrementalAdd(const tj::SynthCorpus& corpus,
                                         const tj::Table& extra) {
  tj::TableCatalog catalog;
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  catalog.ComputeSignatures();
  const tj::PairPrunerOptions pruner_options;
  tj::IncrementalPairPruner pruner(pruner_options);
  pruner.Rebuild(catalog);

  IncrementalOutcome outcome;
  outcome.tables = catalog.num_tables();

  tj::Stopwatch add_watch;
  auto id = catalog.AddTable(extra);
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    std::exit(1);
  }
  catalog.ComputeSignatures();  // sketches only the new table
  pruner.OnTableAdded(catalog, *id);
  const tj::PairPrunerResult incremental = pruner.Snapshot();
  outcome.add_seconds = add_watch.ElapsedSeconds();
  outcome.scored_pairs = pruner.last_scored_pairs();

  tj::Stopwatch rebuild_watch;
  const tj::PairPrunerResult scratch =
      tj::ShortlistPairs(catalog, pruner_options);
  outcome.rebuild_seconds = rebuild_watch.ElapsedSeconds();
  outcome.rebuild_pairs = scratch.total_pairs;

  if (incremental.shortlist.size() != scratch.shortlist.size() ||
      incremental.total_pairs != scratch.total_pairs ||
      incremental.pruned_pairs != scratch.pruned_pairs) {
    std::fprintf(stderr,
                 "incremental shortlist diverges from rebuild (%zu/%zu vs "
                 "%zu/%zu)\n",
                 incremental.shortlist.size(), incremental.total_pairs,
                 scratch.shortlist.size(), scratch.total_pairs);
    std::exit(1);
  }
  for (size_t i = 0; i < scratch.shortlist.size(); ++i) {
    if (!(incremental.shortlist[i].a == scratch.shortlist[i].a) ||
        !(incremental.shortlist[i].b == scratch.shortlist[i].b) ||
        incremental.shortlist[i].score != scratch.shortlist[i].score ||
        incremental.shortlist[i].a_is_source !=
            scratch.shortlist[i].a_is_source) {
      std::fprintf(stderr, "incremental shortlist diverges at rank %zu\n", i);
      std::exit(1);
    }
  }
  return outcome;
}

/// The million-table-scale scenario (10k tables at TJ_BENCH_SCALE=1): a
/// synthetic corpus of mostly non-overlapping noise tables with planted
/// joinable pairs, ingested through the LSH-banded incremental pruner.
/// Measures how many exact pair scores the bucket probes cost versus the
/// linear-scan count an exhaustive incremental build pays, then verifies
/// the probed shortlist is bit-identical to a full ShortlistPairs scan and
/// that lossless banding missed nothing (exit 1 on either failure).
struct LshScaleOutcome {
  size_t tables = 0;
  size_t probe_pairs = 0;       // cumulative exact scores via bucket probes
  size_t linear_pairs = 0;      // exhaustive incremental total: N*(N-1)/2
  size_t missed_pairs = 0;      // full-scan survivors outside the buckets
  size_t add_pairs_scored = 0;  // scores for ONE add at full corpus size
  size_t add_linear_pairs = 0;  // what that add costs exhaustively
  double ingest_seconds = 0.0;  // adds + sketches + probed fold-ins
  double fullscan_seconds = 0.0;
};

std::string ScaleCellText(size_t table, size_t row) {
  // Pseudorandom base-36 cells: noise tables must share (almost) no
  // 4-grams, or every sketch collides in some band and the probe
  // degenerates to a full scan. (Sketches lowercase their input, so a
  // mixed-case alphabet would not widen the gram space.)
  uint64_t a = tj::Mix64(table * 1315423911u + row);
  uint64_t b = tj::Mix64(a ^ 0x746a7363616c65ULL);
  std::string s;
  s.reserve(24);
  for (int i = 0; i < 12; ++i) {
    const auto d = static_cast<char>(a % 36);
    s.push_back(d < 26 ? static_cast<char>('a' + d)
                       : static_cast<char>('0' + d - 26));
    a /= 36;
  }
  for (int i = 0; i < 12; ++i) {
    const auto d = static_cast<char>(b % 36);
    s.push_back(d < 26 ? static_cast<char>('a' + d)
                       : static_cast<char>('0' + d - 26));
    b /= 36;
  }
  return s;
}

LshScaleOutcome RunLshScale(double scale, int num_threads) {
  constexpr size_t kRows = 4;
  constexpr size_t kJoinEvery = 100;  // tables 100k and 100k+1 join
  const size_t tables =
      std::max<size_t>(200, static_cast<size_t>(10000 * scale));

  tj::PairPrunerOptions options;
  options.lsh.enabled = true;

  LshScaleOutcome outcome;
  outcome.tables = tables;
  outcome.linear_pairs = tables * (tables - 1) / 2;

  tj::TableCatalog catalog;
  tj::ThreadPool pool(num_threads);
  tj::IncrementalPairPruner pruner(options);
  tj::Stopwatch ingest_watch;
  for (size_t i = 0; i < tables; ++i) {
    const size_t content = (i % kJoinEvery == 1) ? i - 1 : i;
    tj::Table table(tj::StrPrintf("scale%06zu", i));
    tj::Column value("value");
    for (size_t r = 0; r < kRows; ++r) {
      value.Append(ScaleCellText(content, r));
    }
    if (!table.AddColumn(std::move(value)).ok()) std::exit(1);
    auto id = catalog.AddTable(std::move(table));
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      std::exit(1);
    }
  }
  catalog.ComputeSignatures(&pool);
  pruner.Rebuild(catalog, &pool);  // probed fold-in, table by table
  outcome.probe_pairs = pruner.cumulative_scored_pairs();

  // One more add at full corpus size: the steady-state cost of folding a
  // fresh table into a 10k-table live corpus.
  {
    tj::Table extra("scale-extra");
    tj::Column value("value");
    for (size_t r = 0; r < kRows; ++r) {
      value.Append(ScaleCellText(tables + 7, r));
    }
    if (!extra.AddColumn(std::move(value)).ok()) std::exit(1);
    auto id = catalog.AddTable(std::move(extra));
    if (!id.ok()) std::exit(1);
    catalog.ComputeSignatures(&pool);
    outcome.add_linear_pairs = catalog.num_columns() - 1;
    pruner.OnTableAdded(catalog, *id, &pool);
    outcome.add_pairs_scored = pruner.last_scored_pairs();
  }
  outcome.ingest_seconds = ingest_watch.ElapsedSeconds();

  // Acceptance: the probed shortlist must be bit-identical to the full
  // scan, and lossless banding (128x1 at a positive floor) must have
  // missed nothing the full scan kept.
  tj::Stopwatch scan_watch;
  const tj::PairPrunerResult full =
      tj::ShortlistPairs(catalog, options, &pool);
  outcome.fullscan_seconds = scan_watch.ElapsedSeconds();
  const tj::PairPrunerResult probed = pruner.Snapshot();
  if (probed.shortlist.size() != full.shortlist.size() ||
      probed.total_pairs != full.total_pairs ||
      probed.pruned_pairs != full.pruned_pairs) {
    std::fprintf(stderr,
                 "lsh-probed shortlist diverges from full scan (%zu/%zu vs "
                 "%zu/%zu)\n",
                 probed.shortlist.size(), probed.total_pairs,
                 full.shortlist.size(), full.total_pairs);
    std::exit(1);
  }
  for (size_t i = 0; i < full.shortlist.size(); ++i) {
    if (!(probed.shortlist[i].a == full.shortlist[i].a) ||
        !(probed.shortlist[i].b == full.shortlist[i].b) ||
        probed.shortlist[i].score != full.shortlist[i].score ||
        probed.shortlist[i].a_is_source != full.shortlist[i].a_is_source) {
      std::fprintf(stderr, "lsh-probed shortlist diverges at rank %zu\n", i);
      std::exit(1);
    }
    if (!tj::LshIndex::BandsCollide(
            options.lsh, catalog.signature(full.shortlist[i].a),
            catalog.signature(full.shortlist[i].b))) {
      ++outcome.missed_pairs;
    }
  }
  if (outcome.missed_pairs > 0) {
    std::fprintf(stderr,
                 "lossless banding missed %zu full-scan survivors\n",
                 outcome.missed_pairs);
    std::exit(1);
  }
  return outcome;
}

/// The joinability-as-a-service scenario: an in-process CorpusServer on the
/// heap corpus, queried over its unix socket exactly like a tjd client.
/// Measures per-query latency (p50/p99 over round-robin 'joinable' queries
/// against every golden source column), sustained queries/s, and the cost
/// of one mutation round trip — CSV re-read, signature recompute, pruner
/// fold-in, and snapshot rebuild, i.e. the freshness price a live corpus
/// pays per change.
struct ServeOutcome {
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
  double snapshot_rebuild_ms = 0.0;
  double queries_per_second = 0.0;
  size_t queries = 0;
};

ServeOutcome RunServed(const tj::SynthCorpus& corpus,
                       const tj::CorpusDiscoveryOptions& options,
                       bool index_cache_enabled) {
  using namespace tj;
  namespace fs = std::filesystem;
  ServeOutcome outcome;

  const std::string dir =
      (fs::temp_directory_path() /
       ("tj_bench_serve_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = dir + "/tjd.sock";

  TableCatalog catalog;
  for (const Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  ThreadPool pool(options.num_threads);
  serve::ServeOptions serve_options;
  serve_options.socket_path = socket_path;
  serve_options.discovery = options;
  serve_options.index_cache_enabled = index_cache_enabled;
  serve::CorpusServer server(&catalog, &pool, serve_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  std::vector<std::string> queries;
  for (const auto& pair : corpus.golden) {
    queries.push_back("{\"op\":\"joinable\",\"column\":\"" +
                      corpus.tables[pair.source_table].name() +
                      ".value\"}");
  }

  serve::ServeClient client;
  if (!client.Connect(socket_path).ok()) {
    std::fprintf(stderr, "serve: cannot connect to %s\n",
                 socket_path.c_str());
    std::exit(1);
  }
  // Warm up once per distinct query (first touch faults columns in).
  for (const std::string& query : queries) {
    if (!client.CallRaw(query).ok()) {
      std::fprintf(stderr, "serve: warmup query failed\n");
      std::exit(1);
    }
  }

  const size_t rounds = std::max<size_t>(1, 200 / queries.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(rounds * queries.size());
  Stopwatch total;
  for (size_t round = 0; round < rounds; ++round) {
    for (const std::string& query : queries) {
      Stopwatch per_query;
      if (!client.CallRaw(query).ok()) {
        std::fprintf(stderr, "serve: query failed mid-benchmark\n");
        std::exit(1);
      }
      latencies_us.push_back(per_query.ElapsedSeconds() * 1e6);
    }
  }
  const double total_seconds = total.ElapsedSeconds();
  outcome.queries = latencies_us.size();
  outcome.queries_per_second =
      total_seconds > 0 ? static_cast<double>(outcome.queries) / total_seconds
                        : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&](double p) {
    const size_t index = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_us.size())));
    return latencies_us[index];
  };
  outcome.query_p50_us = percentile(0.50);
  outcome.query_p99_us = percentile(0.99);

  // One mutation round trip = the snapshot freshness cost. Updating a
  // table with identical contents exercises the whole pipeline without
  // changing the corpus.
  const Table& victim = corpus.tables[corpus.golden[0].source_table];
  const std::string csv = dir + "/" + victim.name() + ".csv";
  if (!WriteCsvFile(victim, csv).ok()) {
    std::fprintf(stderr, "serve: cannot write %s\n", csv.c_str());
    std::exit(1);
  }
  Stopwatch rebuild;
  const auto updated =
      client.CallRaw("{\"op\":\"update\",\"path\":\"" + csv + "\"}");
  outcome.snapshot_rebuild_ms = rebuild.ElapsedSeconds() * 1e3;
  if (!updated.ok() ||
      updated->find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "serve: mutation round trip failed\n");
    std::exit(1);
  }

  client.Close();
  server.Shutdown();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return outcome;
}

/// The SIMD acceptance scenario: sketch every column of the heap corpus
/// once with the kernels pinned to scalar and once at the best-supported
/// level, timing each pass and proving the signatures bit-identical (the
/// determinism contract — exit 1 on divergence). The side-by-side
/// signature_build_ms fields are what the BENCH trajectory watches for
/// vectorization wins and regressions.
struct SignatureBuildOutcome {
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  tj::PerfSample scalar_perf;
  tj::PerfSample simd_perf;
};

SignatureBuildOutcome MeasureSignatureBuild(const tj::SynthCorpus& corpus,
                                            tj::PerfCounterGroup* perf) {
  using namespace tj;
  SignatureBuildOutcome outcome;
  const simd::SimdLevel best = simd::BestSupportedLevel();
  std::vector<ColumnSignature> scalar_sigs;
  std::vector<ColumnSignature> best_sigs;

  const auto sketch = [&](simd::SimdLevel level, double* ms,
                          PerfSample* sample,
                          std::vector<ColumnSignature>* sigs) {
    simd::SetActiveLevel(level);
    TableCatalog catalog;
    for (const Table& table : corpus.tables) {
      auto added = catalog.AddTable(table);
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        std::exit(1);
      }
    }
    const PerfSample begin = perf->Read();
    Stopwatch watch;
    catalog.ComputeSignatures();
    *ms = watch.ElapsedSeconds() * 1e3;
    *sample = perf->Read().Since(begin);
    for (const ColumnRef ref : catalog.AllColumns()) {
      sigs->push_back(catalog.signature(ref));
    }
  };
  sketch(simd::SimdLevel::kScalar, &outcome.scalar_ms, &outcome.scalar_perf,
         &scalar_sigs);
  sketch(best, &outcome.simd_ms, &outcome.simd_perf, &best_sigs);
  simd::SetActiveLevel(best);  // leave dispatch at the default for the rest

  if (scalar_sigs != best_sigs) {
    std::fprintf(stderr,
                 "signatures DIVERGE between scalar and %s kernels (BUG)\n",
                 simd::SimdLevelName(best));
    std::exit(1);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tj;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  // Open the counter trio before anything spawns a thread: events are
  // inherited by threads created afterwards, so every phase's pool workers
  // are counted. Degrades silently (zeros + available=false) where the
  // syscall is blocked.
  PerfCounterGroup perf;
  perf.Open();

  const char* scale_env = std::getenv("TJ_BENCH_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  const char* threads_env = std::getenv("TJ_NUM_THREADS");
  const int num_threads = threads_env != nullptr ? std::atoi(threads_env) : 1;

  SynthCorpusOptions corpus_options;
  corpus_options.num_joinable_pairs =
      static_cast<size_t>(10 * (scale > 0 ? scale : 1.0));
  if (corpus_options.num_joinable_pairs == 0) {
    corpus_options.num_joinable_pairs = 1;
  }
  corpus_options.num_noise_tables =
      corpus_options.num_joinable_pairs * 2 / 5;
  corpus_options.rows = 40;
  corpus_options.seed = 42;

  CorpusDiscoveryOptions pruned_options;
  pruned_options.num_threads = num_threads;

  CorpusDiscoveryOptions brute_options = pruned_options;
  brute_options.pruner.min_containment = 0.0;
  brute_options.pruner.require_charset_overlap = false;
  brute_options.pruner.min_rows = 0;

  // Out-of-core FIRST — before the heap corpus even exists: peak RSS is a
  // process-wide high-water mark, so the spilled phase's sample is only
  // meaningful while no in-memory copy of the corpus has been faulted.
  const PerfSample spill_begin = perf.Read();
  const SpillOutcome spilled = RunSpilled(corpus_options, pruned_options);
  const PerfSample spill_perf = perf.Read().Since(spill_begin);

  const SynthCorpus corpus = GenerateSynthCorpus(corpus_options);
  std::printf("corpus: %zu tables (%zu joinable pairs), %zu rows each, "
              "threads=%d, simd=%s, perf counters %s\n",
              corpus.tables.size(), corpus.golden.size(),
              corpus_options.rows, ResolveNumThreads(num_threads),
              simd::SimdLevelName(simd::ActiveLevel()),
              perf.available() ? "on" : "unavailable");

  // Scalar-vs-best sketch pass (proves bit-identity, reports both times).
  const SignatureBuildOutcome sig_build =
      MeasureSignatureBuild(corpus, &perf);
  std::printf(
      "signature build: scalar %.2f ms, %s %.2f ms (%.2fx), outputs "
      "identical\n",
      sig_build.scalar_ms, simd::SimdLevelName(simd::BestSupportedLevel()),
      sig_build.simd_ms,
      sig_build.simd_ms > 0 ? sig_build.scalar_ms / sig_build.simd_ms : 0.0);

  const PerfSample pruned_begin = perf.Read();
  const RunOutcome pruned = Run(corpus, pruned_options);
  const PerfSample pruned_perf = perf.Read().Since(pruned_begin);

  // Cross-pair memoization: cold pass builds each distinct column's index
  // once into the cache, warm pass (repeated discovery over the unchanged
  // repository) is all hits. Both must match the uncached run exactly —
  // the cache identity gate, same pattern as the spill/LSH gates. Runs
  // back-to-back with the uncached pass, before brute force churns the
  // heap, so the cached/uncached comparison sees the same allocator state.
  IndexCache index_cache(256ull << 20);
  const CachedOutcome cached = RunCached(corpus, pruned_options, &index_cache);

  const PerfSample brute_begin = perf.Read();
  const RunOutcome brute = Run(corpus, brute_options);
  const PerfSample brute_perf = perf.Read().Since(brute_begin);
  const bool cache_identical =
      SameDiscoveryResults(cached.cold.result, pruned.result) &&
      SameDiscoveryResults(cached.warm.result, pruned.result);
  if (!cache_identical) {
    std::fprintf(stderr,
                 "index-cached discovery DIVERGES from uncached (BUG)\n");
    return 1;
  }
  const bool spill_identical =
      SameDiscoveryResults(spilled.result, pruned.result);
  std::printf(
      "out-of-core: %zu cell bytes under a %zu-byte budget, %zu spilled "
      "bytes, rss growth %zu bytes, %s, output %s\n",
      spilled.total_cell_bytes, spilled.budget_bytes, spilled.spilled_bytes,
      spilled.rss_growth_bytes, FormatSeconds(spilled.seconds).c_str(),
      spill_identical ? "identical to in-memory" : "DIVERGES (BUG)");
  if (!spill_identical) return 1;

  StorageMetrics storage = MeasureStorage(corpus);
  // The heap corpus spills nothing; report the out-of-core catalog's
  // spill-file footprint and the peak RSS sampled right after the spilled
  // phase (before the in-memory passes faulted everything).
  storage.spilled_bytes = spilled.spilled_bytes;
  storage.peak_rss_bytes = spilled.peak_rss_bytes;
  PrintStorageSummary(storage);

  TablePrinter printer({"mode", "pairs eval", "pruned %", "seconds",
                        "pairs/s", "joined rows", "pairs w/ rules"});
  auto add_row = [&](const char* mode, const RunOutcome& o) {
    printer.AddRow({mode, StrPrintf("%zu", o.evaluated_pairs),
                    FormatDouble(100.0 * o.pruning_ratio, 1),
                    FormatSeconds(o.seconds),
                    FormatDouble(o.seconds > 0
                                     ? static_cast<double>(o.evaluated_pairs) /
                                           o.seconds
                                     : 0.0,
                                 1),
                    StrPrintf("%zu", o.joined_rows),
                    StrPrintf("%zu", o.pairs_with_rules)});
  };
  add_row("sketch-pruned", pruned);
  add_row("pruned+cache (cold)", cached.cold);
  add_row("pruned+cache (warm)", cached.warm);
  add_row("brute-force", brute);
  printer.Print();
  std::printf("speedup vs brute force: %.2fx\n",
              pruned.seconds > 0 ? brute.seconds / pruned.seconds : 0.0);
  std::printf(
      "index cache: %llu hits, %llu misses, %llu evictions, %llu bytes; "
      "warm repeat %.2fx vs uncached, output identical\n",
      static_cast<unsigned long long>(cached.stats.hits),
      static_cast<unsigned long long>(cached.stats.misses),
      static_cast<unsigned long long>(cached.stats.evictions),
      static_cast<unsigned long long>(cached.stats.bytes),
      cached.warm.seconds > 0 ? pruned.seconds / cached.warm.seconds : 0.0);

  // Incremental maintenance: fold one new table into a live shortlist at
  // half and full corpus size. Incremental scored pairs grow ~linearly with
  // corpus size; the from-scratch rebuild grows quadratically.
  SynthCorpusOptions half_options = corpus_options;
  half_options.num_joinable_pairs =
      std::max<size_t>(1, corpus_options.num_joinable_pairs / 2);
  half_options.num_noise_tables = corpus_options.num_noise_tables / 2;
  const SynthCorpus half_corpus = GenerateSynthCorpus(half_options);

  SynthCorpusOptions extra_options;
  extra_options.num_joinable_pairs = 1;
  extra_options.num_noise_tables = 0;
  extra_options.rows = corpus_options.rows;
  extra_options.seed = corpus_options.seed + 1;
  extra_options.name_prefix = "inc";
  const SynthCorpus extra = GenerateSynthCorpus(extra_options);

  const IncrementalOutcome inc_half =
      MeasureIncrementalAdd(half_corpus, extra.tables[0]);
  const IncrementalOutcome inc_full =
      MeasureIncrementalAdd(corpus, extra.tables[0]);

  TablePrinter inc_printer({"corpus tables", "incr pairs scored",
                            "incr time", "rebuild pairs", "rebuild time",
                            "score work saved"});
  auto add_inc_row = [&](const IncrementalOutcome& o) {
    inc_printer.AddRow(
        {StrPrintf("%zu", o.tables), StrPrintf("%zu", o.scored_pairs),
         FormatSeconds(o.add_seconds), StrPrintf("%zu", o.rebuild_pairs),
         FormatSeconds(o.rebuild_seconds),
         StrPrintf("%.1fx", o.scored_pairs > 0
                                ? static_cast<double>(o.rebuild_pairs) /
                                      static_cast<double>(o.scored_pairs)
                                : 0.0)});
  };
  std::printf("\nincremental add of one table vs from-scratch rebuild:\n");
  add_inc_row(inc_half);
  add_inc_row(inc_full);
  inc_printer.Print();
  std::printf(
      "scored-pair growth half->full: incremental %.2fx, rebuild %.2fx "
      "(O(N) vs O(N^2))\n",
      inc_half.scored_pairs > 0
          ? static_cast<double>(inc_full.scored_pairs) /
                static_cast<double>(inc_half.scored_pairs)
          : 0.0,
      inc_half.rebuild_pairs > 0
          ? static_cast<double>(inc_full.rebuild_pairs) /
                static_cast<double>(inc_half.rebuild_pairs)
          : 0.0);

  // Million-table scale: LSH-banded probes vs the linear-scan incremental
  // build on a 10k-table corpus (scaled by TJ_BENCH_SCALE, floor 200).
  const PerfSample lsh_begin = perf.Read();
  const LshScaleOutcome lsh = RunLshScale(scale, num_threads);
  const PerfSample lsh_perf = perf.Read().Since(lsh_begin);
  std::printf(
      "\nlsh scale (%zu tables): probes scored %zu of %zu linear-scan "
      "pairs (%.3fx), one full-size add scored %zu of %zu (%.3fx), "
      "0 missed, ingest %s, full-scan check %s\n",
      lsh.tables, lsh.probe_pairs, lsh.linear_pairs,
      lsh.linear_pairs > 0 ? static_cast<double>(lsh.probe_pairs) /
                                 static_cast<double>(lsh.linear_pairs)
                           : 0.0,
      lsh.add_pairs_scored, lsh.add_linear_pairs,
      lsh.add_linear_pairs > 0
          ? static_cast<double>(lsh.add_pairs_scored) /
                static_cast<double>(lsh.add_linear_pairs)
          : 0.0,
      FormatSeconds(lsh.ingest_seconds).c_str(),
      FormatSeconds(lsh.fullscan_seconds).c_str());

  // Before/after: one daemon with per-pair index rebuilds (the legacy
  // path), one with the snapshot's per-epoch index cache serving queries.
  const ServeOutcome served_uncached =
      RunServed(corpus, pruned_options, /*index_cache_enabled=*/false);
  const PerfSample serve_begin = perf.Read();
  const ServeOutcome served =
      RunServed(corpus, pruned_options, /*index_cache_enabled=*/true);
  const PerfSample serve_perf = perf.Read().Since(serve_begin);
  std::printf(
      "\nserved queries (tjd protocol, %zu queries): p50 %.0f us, p99 %.0f "
      "us, %.0f queries/s; mutation->fresh snapshot %.1f ms; p50 without "
      "index cache %.0f us (%.2fx)\n",
      served.queries, served.query_p50_us, served.query_p99_us,
      served.queries_per_second, served.snapshot_rebuild_ms,
      served_uncached.query_p50_us,
      served.query_p50_us > 0
          ? served_uncached.query_p50_us / served.query_p50_us
          : 0.0);

  if (perf.available()) {
    TablePrinter perf_printer(
        {"phase", "cycles", "instructions", "ipc", "cache misses"});
    const auto add_perf_row = [&](const char* phase, const PerfSample& s) {
      perf_printer.AddRow({phase, StrPrintf("%llu",
                                            (unsigned long long)s.cycles),
                           StrPrintf("%llu",
                                     (unsigned long long)s.instructions),
                           FormatDouble(s.Ipc(), 2),
                           StrPrintf("%llu",
                                     (unsigned long long)s.cache_misses)});
    };
    add_perf_row("signature build (scalar)", sig_build.scalar_perf);
    add_perf_row("signature build (best)", sig_build.simd_perf);
    add_perf_row("out-of-core discovery", spill_perf);
    add_perf_row("sketch-pruned discovery", pruned_perf);
    add_perf_row("brute-force discovery", brute_perf);
    add_perf_row("lsh scale ingest", lsh_perf);
    add_perf_row("served queries", serve_perf);
    std::printf("\nhardware counters per phase (simd_level=%s):\n",
                simd::SimdLevelName(simd::ActiveLevel()));
    perf_printer.Print();
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"bench_corpus\",\n"
        "  \"tables\": %zu,\n"
        "  \"column_pairs\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"pruning_ratio\": %.6f,\n"
        "  \"evaluated_pairs\": %zu,\n"
        "  \"pruned_seconds\": %.6f,\n"
        "  \"pairs_per_second\": %.3f,\n"
        "  \"pairs_per_second_uncached\": %.3f,\n"
        "  \"pruned_cached_cold_seconds\": %.6f,\n"
        "  \"pruned_cached_warm_seconds\": %.6f,\n"
        "  \"cache_output_identical\": %s,\n"
        "  \"index_cache_hits\": %llu,\n"
        "  \"index_cache_misses\": %llu,\n"
        "  \"index_cache_evictions\": %llu,\n"
        "  \"index_cache_bytes\": %llu,\n"
        "  \"bruteforce_seconds\": %.6f,\n"
        "  \"bruteforce_pairs\": %zu,\n"
        "  \"speedup_vs_bruteforce\": %.3f,\n"
        "  \"incremental_half_tables\": %zu,\n"
        "  \"incremental_half_scored_pairs\": %zu,\n"
        "  \"incremental_half_add_seconds\": %.6f,\n"
        "  \"incremental_half_rebuild_pairs\": %zu,\n"
        "  \"incremental_half_rebuild_seconds\": %.6f,\n"
        "  \"incremental_full_tables\": %zu,\n"
        "  \"incremental_full_scored_pairs\": %zu,\n"
        "  \"incremental_full_add_seconds\": %.6f,\n"
        "  \"incremental_full_rebuild_pairs\": %zu,\n"
        "  \"incremental_full_rebuild_seconds\": %.6f,\n"
        "  \"incremental_pairs_per_second\": %.3f,\n"
        "  \"spill_total_cell_bytes\": %zu,\n"
        "  \"spill_budget_bytes\": %zu,\n"
        "  \"spill_rss_growth_bytes\": %zu,\n"
        "  \"spill_seconds\": %.6f,\n"
        "  \"spill_output_identical\": %s,\n",
        corpus.tables.size(), pruned.total_pairs,
        ResolveNumThreads(num_threads), pruned.pruning_ratio,
        pruned.evaluated_pairs, pruned.seconds,
        // Headline throughput is the warm cached pass — the steady state
        // of repeated discovery over a memoized repository; the uncached
        // figure alongside keeps the before/after visible to the trend.
        cached.warm.seconds > 0
            ? static_cast<double>(cached.warm.evaluated_pairs) /
                  cached.warm.seconds
            : 0.0,
        pruned.seconds > 0
            ? static_cast<double>(pruned.evaluated_pairs) / pruned.seconds
            : 0.0,
        cached.cold.seconds, cached.warm.seconds,
        cache_identical ? "true" : "false",
        static_cast<unsigned long long>(cached.stats.hits),
        static_cast<unsigned long long>(cached.stats.misses),
        static_cast<unsigned long long>(cached.stats.evictions),
        static_cast<unsigned long long>(cached.stats.bytes),
        brute.seconds, brute.evaluated_pairs,
        pruned.seconds > 0 ? brute.seconds / pruned.seconds : 0.0,
        inc_half.tables, inc_half.scored_pairs, inc_half.add_seconds,
        inc_half.rebuild_pairs, inc_half.rebuild_seconds, inc_full.tables,
        inc_full.scored_pairs, inc_full.add_seconds, inc_full.rebuild_pairs,
        inc_full.rebuild_seconds,
        inc_full.add_seconds > 0
            ? static_cast<double>(inc_full.scored_pairs) /
                  inc_full.add_seconds
            : 0.0,
        spilled.total_cell_bytes, spilled.budget_bytes,
        spilled.rss_growth_bytes, spilled.seconds,
        spill_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"query_p50_us\": %.3f,\n"
                 "  \"query_p50_us_uncached\": %.3f,\n"
                 "  \"query_p99_us\": %.3f,\n"
                 "  \"snapshot_rebuild_ms\": %.3f,\n"
                 "  \"queries_per_second\": %.3f,\n",
                 served.query_p50_us, served_uncached.query_p50_us,
                 served.query_p99_us, served.snapshot_rebuild_ms,
                 served.queries_per_second);
    std::fprintf(f,
                 "  \"simd_level\": \"%s\",\n"
                 "  \"simd_best_level\": \"%s\",\n"
                 "  \"perf_counters_available\": %s,\n"
                 "  \"signature_build_ms_scalar\": %.3f,\n"
                 "  \"signature_build_ms_simd\": %.3f,\n",
                 simd::SimdLevelName(simd::ActiveLevel()),
                 simd::SimdLevelName(simd::BestSupportedLevel()),
                 perf.available() ? "true" : "false", sig_build.scalar_ms,
                 sig_build.simd_ms);
    WritePerfPhaseJson(f, "signature_build_scalar", sig_build.scalar_perf);
    WritePerfPhaseJson(f, "signature_build_simd", sig_build.simd_perf);
    WritePerfPhaseJson(f, "spill", spill_perf);
    WritePerfPhaseJson(f, "pruned", pruned_perf);
    WritePerfPhaseJson(f, "bruteforce", brute_perf);
    WritePerfPhaseJson(f, "lsh", lsh_perf);
    WritePerfPhaseJson(f, "serve", serve_perf);
    std::fprintf(f,
                 "  \"lsh_scale_tables\": %zu,\n"
                 "  \"lsh_probe_pairs\": %zu,\n"
                 "  \"lsh_linear_pairs\": %zu,\n"
                 "  \"lsh_missed_pairs\": %zu,\n"
                 "  \"add_pairs_scored_10k\": %zu,\n"
                 "  \"add_linear_pairs_10k\": %zu,\n"
                 "  \"lsh_ingest_seconds\": %.6f,\n"
                 "  \"lsh_fullscan_seconds\": %.6f,\n",
                 lsh.tables, lsh.probe_pairs, lsh.linear_pairs,
                 lsh.missed_pairs, lsh.add_pairs_scored,
                 lsh.add_linear_pairs, lsh.ingest_seconds,
                 lsh.fullscan_seconds);
    WriteStorageJsonTail(f, storage);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
