// Corpus-scale discovery benchmark: sketch-pruned CorpusDiscovery vs. the
// brute-force all-pairs baseline on a generated synthetic corpus. Reports
// the pruning ratio, end-to-end wall time, and evaluated-pairs throughput,
// and (with --json PATH, or BENCH_corpus.json by default under --json)
// emits a machine-readable record so CI can track the perf trajectory.
//
// Environment: TJ_BENCH_SCALE scales the corpus size (1.0 = 10 joinable
// pairs + 4 noise tables at 40 rows); TJ_NUM_THREADS sets the pair-level
// thread count (0 = all cores).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/report.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "corpus/catalog.h"
#include "corpus/corpus_discovery.h"
#include "datagen/corpus.h"

namespace {

struct RunOutcome {
  size_t evaluated_pairs = 0;
  size_t total_pairs = 0;
  double pruning_ratio = 0.0;
  double seconds = 0.0;
  size_t joined_rows = 0;
  size_t pairs_with_rules = 0;
};

RunOutcome Run(const tj::SynthCorpus& corpus,
               const tj::CorpusDiscoveryOptions& options) {
  tj::TableCatalog catalog;
  for (const tj::Table& table : corpus.tables) {
    auto added = catalog.AddTable(table);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      std::exit(1);
    }
  }
  tj::Stopwatch watch;
  const tj::CorpusDiscoveryResult result =
      tj::DiscoverJoinableColumns(&catalog, options);
  RunOutcome outcome;
  outcome.seconds = watch.ElapsedSeconds();
  outcome.evaluated_pairs = result.results.size();
  outcome.total_pairs = result.total_column_pairs;
  outcome.pruning_ratio = result.PruningRatio();
  for (const tj::CorpusPairResult& pair : result.results) {
    outcome.joined_rows += pair.joined_rows;
    if (!pair.transformations.empty()) ++outcome.pairs_with_rules;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tj;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const char* scale_env = std::getenv("TJ_BENCH_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  const char* threads_env = std::getenv("TJ_NUM_THREADS");
  const int num_threads = threads_env != nullptr ? std::atoi(threads_env) : 1;

  SynthCorpusOptions corpus_options;
  corpus_options.num_joinable_pairs =
      static_cast<size_t>(10 * (scale > 0 ? scale : 1.0));
  if (corpus_options.num_joinable_pairs == 0) {
    corpus_options.num_joinable_pairs = 1;
  }
  corpus_options.num_noise_tables =
      corpus_options.num_joinable_pairs * 2 / 5;
  corpus_options.rows = 40;
  corpus_options.seed = 42;
  const SynthCorpus corpus = GenerateSynthCorpus(corpus_options);

  CorpusDiscoveryOptions pruned_options;
  pruned_options.num_threads = num_threads;

  CorpusDiscoveryOptions brute_options = pruned_options;
  brute_options.pruner.min_containment = 0.0;
  brute_options.pruner.require_charset_overlap = false;
  brute_options.pruner.min_rows = 0;

  std::printf("corpus: %zu tables (%zu joinable pairs), %zu rows each, "
              "threads=%d\n",
              corpus.tables.size(), corpus.golden.size(),
              corpus_options.rows, ResolveNumThreads(num_threads));

  const RunOutcome pruned = Run(corpus, pruned_options);
  const RunOutcome brute = Run(corpus, brute_options);

  TablePrinter printer({"mode", "pairs eval", "pruned %", "seconds",
                        "pairs/s", "joined rows", "pairs w/ rules"});
  auto add_row = [&](const char* mode, const RunOutcome& o) {
    printer.AddRow({mode, StrPrintf("%zu", o.evaluated_pairs),
                    FormatDouble(100.0 * o.pruning_ratio, 1),
                    FormatSeconds(o.seconds),
                    FormatDouble(o.seconds > 0
                                     ? static_cast<double>(o.evaluated_pairs) /
                                           o.seconds
                                     : 0.0,
                                 1),
                    StrPrintf("%zu", o.joined_rows),
                    StrPrintf("%zu", o.pairs_with_rules)});
  };
  add_row("sketch-pruned", pruned);
  add_row("brute-force", brute);
  printer.Print();
  std::printf("speedup vs brute force: %.2fx\n",
              pruned.seconds > 0 ? brute.seconds / pruned.seconds : 0.0);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"bench_corpus\",\n"
        "  \"tables\": %zu,\n"
        "  \"column_pairs\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"pruning_ratio\": %.6f,\n"
        "  \"evaluated_pairs\": %zu,\n"
        "  \"pruned_seconds\": %.6f,\n"
        "  \"pairs_per_second\": %.3f,\n"
        "  \"bruteforce_seconds\": %.6f,\n"
        "  \"bruteforce_pairs\": %zu,\n"
        "  \"speedup_vs_bruteforce\": %.3f\n"
        "}\n",
        corpus.tables.size(), pruned.total_pairs,
        ResolveNumThreads(num_threads), pruned.pruning_ratio,
        pruned.evaluated_pairs, pruned.seconds,
        pruned.seconds > 0
            ? static_cast<double>(pruned.evaluated_pairs) / pruned.seconds
            : 0.0,
        brute.seconds, brute.evaluated_pairs,
        pruned.seconds > 0 ? brute.seconds / pruned.seconds : 0.0);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
