// Figure 3 — Effect of pruning as the input length grows.
//
// Synthetic tables with a fixed number of rows (100 in the paper) and row
// length swept from 20 to 280 characters. Reports the duplicate-
// transformation percentage and the cache hit ratio at each length.
// Paper shape: both curves stay high and the duplicate fraction climbs with
// length (up to ~98%).

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "core/discovery.h"
#include "datagen/synth.h"

namespace tj {
namespace {

void Run() {
  std::printf("== Figure 3: Pruning percentage vs input length ==\n");
  const SuiteOptions suite_options = SuiteOptionsFromEnv();
  const size_t rows =
      static_cast<size_t>(100 * suite_options.scale) < 10
          ? 10
          : static_cast<size_t>(100 * suite_options.scale);
  std::printf("(rows fixed at %zu)\n\n", rows);

  SeriesPrinter series("length", {"duplicate_pct", "cache_hit_pct"});
  for (int length = 20; length <= 280; length += 40) {
    SynthOptions options;
    options.num_rows = rows;
    options.min_len = length;
    options.max_len = length;
    options.seed = 97 + static_cast<uint64_t>(length);
    const SynthDataset ds = GenerateSynth(options);
    const std::vector<ExamplePair> examples = MakeExamplePairs(
        ds.pair.SourceColumn(), ds.pair.TargetColumn(),
        ds.pair.golden.pairs());
    DiscoveryOptions discovery;
    discovery.max_transformations_per_row = 32768;  // match fig4b's setting
    const DiscoveryResult result =
        DiscoverTransformations(examples, discovery);
    series.AddPoint(length, {100.0 * result.stats.DuplicateRatio(),
                             100.0 * result.stats.CacheHitRatio()});
  }
  series.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
