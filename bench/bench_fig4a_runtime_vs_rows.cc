// Figure 4a — Per-module runtime as the dataset grows vertically (more
// rows; row length fixed at 28 as in the paper).
//
// Series are the paper's four modules: applying transformations, duplicate
// removal (generation + hash-consing), placeholder generation, and unit
// extraction. Paper shape: applying dominates and grows superlinearly; the
// pruning keeps the curve near-linear.

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "core/discovery.h"
#include "datagen/synth.h"

namespace tj {
namespace {

void Run() {
  std::printf("== Figure 4a: Runtime breakdown vs number of rows ==\n\n");
  const SuiteOptions suite_options = SuiteOptionsFromEnv();
  SeriesPrinter series("rows", {"apply_s", "dedup_s", "placeholder_s",
                                "unit_extraction_s", "total_s"});
  const size_t row_counts[] = {100, 250, 500, 1000, 2000};
  for (size_t rows : row_counts) {
    const auto scaled =
        static_cast<size_t>(static_cast<double>(rows) * suite_options.scale);
    if (scaled < 4) continue;
    SynthOptions options;
    options.num_rows = scaled;
    options.min_len = 28;
    options.max_len = 28;
    options.seed = 1009 + rows;
    const SynthDataset ds = GenerateSynth(options);
    const std::vector<ExamplePair> examples = MakeExamplePairs(
        ds.pair.SourceColumn(), ds.pair.TargetColumn(),
        ds.pair.golden.pairs());
    const DiscoveryResult result =
        DiscoverTransformations(examples, DiscoveryOptions());
    series.AddPoint(static_cast<double>(scaled),
                    {result.stats.time_apply,
                     result.stats.time_duplicate_removal,
                     result.stats.time_placeholder_gen,
                     result.stats.time_unit_extraction,
                     result.stats.time_total});
  }
  series.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
