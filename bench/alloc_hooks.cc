// Replacement global operator new/delete that tick the library's allocation
// counters (common/alloc_stats.h). Compiled ONLY into the bench executables
// that report allocation metrics (bench_table2, bench_corpus) — linking this
// TU routes every allocation of the process through malloc/free plus two
// relaxed atomic adds, which is measurement overhead the tests and examples
// do not need to pay.

#include <cstdlib>
#include <new>

#include "common/alloc_stats.h"

namespace {

struct HookInstaller {
  HookInstaller() {
    tj::alloc_internal::g_hooks_installed.store(true,
                                                std::memory_order_relaxed);
  }
};
const HookInstaller g_installer;

void* CountedAlloc(std::size_t size) {
  tj::alloc_internal::g_allocs.fetch_add(1, std::memory_order_relaxed);
  tj::alloc_internal::g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  tj::alloc_internal::g_allocs.fetch_add(1, std::memory_order_relaxed);
  tj::alloc_internal::g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size != 0 ? size : alignment) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(alignment)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
