// Thread-scaling microbenchmarks for the parallel discovery pipeline:
// coverage evaluation, end-to-end discovery, and inverted-index build at
// 1/2/4/hardware threads. Future PRs track scaling from these numbers
// (BENCH_*.json); items_per_second for the coverage benchmark is the
// (transformation, row) evaluation throughput.
//
// The thread count is the benchmark argument; 0 means hardware concurrency
// (ResolveNumThreads semantics). Results are bit-identical across thread
// counts — only the wall clock moves.

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "core/discovery.h"
#include "core/example.h"
#include "datagen/synth.h"
#include "index/inverted_index.h"
#include "match/row_matcher.h"

namespace tj {
namespace {

struct Workload {
  SynthDataset dataset;  // owns the arenas the example-pair views point into
  std::vector<ExamplePair> rows;
  DiscoveryResult base;  // store + interner generated once, serially
};

const Workload& CoverageWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload();
    w->dataset = GenerateSynth(SynthN(300, 5));
    const SynthDataset& ds = w->dataset;
    w->rows = MakeExamplePairs(ds.pair.SourceColumn(),
                               ds.pair.TargetColumn(),
                               ds.pair.golden.pairs());
    DiscoveryOptions options;
    options.num_threads = 1;
    w->base = DiscoverTransformations(w->rows, options);
    return w;
  }();
  return *workload;
}

void BM_CoverageThreads(benchmark::State& state) {
  const Workload& w = CoverageWorkload();
  DiscoveryOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  size_t covering_pairs = 0;
  for (auto _ : state) {
    DiscoveryStats stats;
    const CoverageIndex index =
        ComputeCoverage(w.base.store, w.base.units, w.rows, options, &stats);
    covering_pairs = index.TotalPairs();
    benchmark::DoNotOptimize(covering_pairs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.base.store.size()) *
                          static_cast<int64_t>(w.rows.size()));
  state.counters["threads"] =
      static_cast<double>(ResolveNumThreads(static_cast<int>(state.range(0))));
  state.counters["covering_pairs"] = static_cast<double>(covering_pairs);
}
BENCHMARK(BM_CoverageThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // hardware concurrency
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DiscoveryEndToEndThreads(benchmark::State& state) {
  const Workload& w = CoverageWorkload();
  DiscoveryOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverTransformations(w.rows, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.rows.size()));
  state.counters["threads"] =
      static_cast<double>(ResolveNumThreads(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DiscoveryEndToEndThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_InvertedIndexBuildThreads(benchmark::State& state) {
  static const SynthDataset* ds =
      new SynthDataset(GenerateSynth(SynthN(400, 3)));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NgramInvertedIndex::Build(
        ds->pair.SourceColumn(), 4, 20, true, threads));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ds->pair.SourceColumn().size()));
  state.counters["threads"] = static_cast<double>(ResolveNumThreads(threads));
}
BENCHMARK(BM_InvertedIndexBuildThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Raw subsystem overhead: a ParallelFor dispatch over trivial chunks,
// isolating the pool's fork/join cost from real work.
void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<size_t> sink{0};
    pool.ParallelFor(1024, static_cast<size_t>(pool.size()) * 4,
                     [&](int, size_t, size_t begin, size_t end) {
                       sink.fetch_add(end - begin,
                                      std::memory_order_relaxed);
                     });
    benchmark::DoNotOptimize(sink.load());
  }
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
