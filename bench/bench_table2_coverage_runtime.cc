// Table 2 — Transformation coverage and runtime: our approach vs Auto-Join,
// under n-gram row matching (top panel) and golden row matching (bottom
// panel).
//
// Reported per dataset (means over its table pairs; times are totals):
//   Top Cov.   coverage of the single best transformation
//   Coverage   coverage of the covering set
//   #Trans.    size of the covering set
//   Time       discovery wall time (ours) / Auto-Join wall time
// Auto-Join columns show the union of per-subset transformations, mirroring
// the paper ("for a covering set, we took all transformations returned").
// Paper shape: our coverage ~1.00 everywhere, Auto-Join <= 0.45 with runtimes
// 3-4 orders of magnitude larger (often hitting the time cap).

#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

void RunPanel(const std::vector<BenchDataset>& suite, MatchingMode matching,
              ThreadPool* pool, const char* title) {
  std::printf("-- %s --\n", title);
  TablePrinter table({"Dataset", "TopCov", "(AJ)", "Coverage", "(AJ)",
                      "#Trans", "(AJ)", "Time", "(AJ Time)"});
  for (const BenchDataset& dataset : suite) {
    std::vector<double> top;
    std::vector<double> cover;
    std::vector<double> ntrans;
    double seconds = 0.0;
    std::vector<double> aj_top;
    std::vector<double> aj_cover;
    std::vector<double> aj_ntrans;
    double aj_seconds = 0.0;
    bool aj_any_timeout = false;
    const std::vector<DiscoveryEval> ours_all =
        EvaluateDiscoveryAll(dataset, matching, pool);
    for (const DiscoveryEval& ours : ours_all) {
      top.push_back(ours.top_coverage);
      cover.push_back(ours.cover_coverage);
      ntrans.push_back(static_cast<double>(ours.num_transformations));
      seconds += ours.seconds;
    }
    // Auto-Join runs under a per-table wall budget, so it stays sequential:
    // fanning budgeted runs out would let scheduling skew what each pair
    // accomplishes inside its cap.
    for (const TablePair& pair : dataset.tables) {
      const AutoJoinEval aj = EvaluateAutoJoin(pair, dataset, matching);
      aj_top.push_back(aj.top_coverage);
      aj_cover.push_back(aj.union_coverage);
      aj_ntrans.push_back(static_cast<double>(aj.num_transformations));
      aj_seconds += aj.seconds;
      aj_any_timeout |= aj.timed_out;
    }
    table.AddRow(
        {dataset.name, FormatDouble(Mean(top), 2),
         StrPrintf("(%.2f)", Mean(aj_top)), FormatDouble(Mean(cover), 2),
         StrPrintf("(%.2f)", Mean(aj_cover)), FormatDouble(Mean(ntrans), 2),
         StrPrintf("(%.2f)", Mean(aj_ntrans)), FormatSeconds(seconds),
         StrPrintf("(%s%s)", FormatSeconds(aj_seconds).c_str(),
                   aj_any_timeout ? ", capped" : "")});
  }
  table.Print();
  std::printf("\n");
}

void Run() {
  std::printf("== Table 2: Coverage and runtime, ours vs Auto-Join ==\n");
  std::printf(
      "(Auto-Join runs under a per-table wall budget; 'capped' marks runs "
      "that\nhit it, the analogue of the paper's 650,000s cap.)\n\n");
  const SuiteOptions options = SuiteOptionsFromEnv();
  const std::vector<BenchDataset> suite = BuildSuite(options);
  ThreadPool pool(options.num_threads);
  RunPanel(suite, MatchingMode::kNgram, &pool, "N-gram row matching");
  RunPanel(suite, MatchingMode::kGolden, &pool, "Golden row matching");
}

}  // namespace
}  // namespace tj

int main() {
  tj::Run();
  return 0;
}
