// Table 2 — Transformation coverage and runtime: our approach vs Auto-Join,
// under n-gram row matching (top panel) and golden row matching (bottom
// panel).
//
// Reported per dataset (means over its table pairs; times are totals):
//   Top Cov.   coverage of the single best transformation
//   Coverage   coverage of the covering set
//   #Trans.    size of the covering set
//   Time       discovery wall time (ours) / Auto-Join wall time
// Auto-Join columns show the union of per-subset transformations, mirroring
// the paper ("for a covering set, we took all transformations returned").
// Paper shape: our coverage ~1.00 everywhere, Auto-Join <= 0.45 with runtimes
// 3-4 orders of magnitude larger (often hitting the time cap).

// With --json PATH the bench additionally writes a machine-readable record:
// the coverage/runtime summary plus the storage-core metrics — cells-bytes
// (column arena footprint of the whole suite) and the index-build
// allocation comparison between the flat CSR build and the retained
// map-based reference builder (strictly fewer allocations is an asserted
// property of the refactor; here it is a recorded number).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/storage_metrics.h"
#include "benchlib/suite.h"
#include "common/perf_counters.h"
#include "common/simd.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace tj {
namespace {

/// Per-panel aggregate for the JSON record.
struct PanelSummary {
  double mean_top_cov = 0.0;
  double mean_coverage = 0.0;
  double seconds = 0.0;
};

/// Storage-core metrics over the whole suite: arena footprint of every
/// table, index-build allocation comparison over every join column.
StorageMetrics MeasureStorage(const std::vector<BenchDataset>& suite) {
  StorageMetrics m;
  for (const BenchDataset& dataset : suite) {
    for (const TablePair& pair : dataset.tables) {
      m.AddCells(pair.source);
      m.AddCells(pair.target);
      m.MeasureColumn(pair.SourceColumn());
      m.MeasureColumn(pair.TargetColumn());
    }
  }
  // Fill the peak once here so the printed summary and the JSON tail
  // report the same sample.
  m.peak_rss_bytes = PeakRssBytes();
  return m;
}

PanelSummary RunPanel(const std::vector<BenchDataset>& suite,
                      MatchingMode matching, ThreadPool* pool,
                      const char* title) {
  PanelSummary summary;
  std::printf("-- %s --\n", title);
  TablePrinter table({"Dataset", "TopCov", "(AJ)", "Coverage", "(AJ)",
                      "#Trans", "(AJ)", "Time", "(AJ Time)"});
  for (const BenchDataset& dataset : suite) {
    std::vector<double> top;
    std::vector<double> cover;
    std::vector<double> ntrans;
    double seconds = 0.0;
    std::vector<double> aj_top;
    std::vector<double> aj_cover;
    std::vector<double> aj_ntrans;
    double aj_seconds = 0.0;
    bool aj_any_timeout = false;
    const std::vector<DiscoveryEval> ours_all =
        EvaluateDiscoveryAll(dataset, matching, pool);
    for (const DiscoveryEval& ours : ours_all) {
      top.push_back(ours.top_coverage);
      cover.push_back(ours.cover_coverage);
      ntrans.push_back(static_cast<double>(ours.num_transformations));
      seconds += ours.seconds;
    }
    // Auto-Join runs under a per-table wall budget, so it stays sequential:
    // fanning budgeted runs out would let scheduling skew what each pair
    // accomplishes inside its cap.
    for (const TablePair& pair : dataset.tables) {
      const AutoJoinEval aj = EvaluateAutoJoin(pair, dataset, matching);
      aj_top.push_back(aj.top_coverage);
      aj_cover.push_back(aj.union_coverage);
      aj_ntrans.push_back(static_cast<double>(aj.num_transformations));
      aj_seconds += aj.seconds;
      aj_any_timeout |= aj.timed_out;
    }
    table.AddRow(
        {dataset.name, FormatDouble(Mean(top), 2),
         StrPrintf("(%.2f)", Mean(aj_top)), FormatDouble(Mean(cover), 2),
         StrPrintf("(%.2f)", Mean(aj_cover)), FormatDouble(Mean(ntrans), 2),
         StrPrintf("(%.2f)", Mean(aj_ntrans)), FormatSeconds(seconds),
         StrPrintf("(%s%s)", FormatSeconds(aj_seconds).c_str(),
                   aj_any_timeout ? ", capped" : "")});
    summary.mean_top_cov += Mean(top);
    summary.mean_coverage += Mean(cover);
    summary.seconds += seconds;
  }
  if (!suite.empty()) {
    summary.mean_top_cov /= static_cast<double>(suite.size());
    summary.mean_coverage /= static_cast<double>(suite.size());
  }
  table.Print();
  std::printf("\n");
  return summary;
}

int Run(const std::string& json_path) {
  // Counters first: events opened here are inherited by the pool's worker
  // threads (constructed below), so panel deltas charge parallel work too.
  PerfCounterGroup perf;
  perf.Open();

  std::printf("== Table 2: Coverage and runtime, ours vs Auto-Join ==\n");
  std::printf("(simd=%s, perf counters %s)\n",
              simd::SimdLevelName(simd::ActiveLevel()),
              perf.available() ? "on" : "unavailable");
  std::printf(
      "(Auto-Join runs under a per-table wall budget; 'capped' marks runs "
      "that\nhit it, the analogue of the paper's 650,000s cap.)\n\n");
  const SuiteOptions options = SuiteOptionsFromEnv();
  const std::vector<BenchDataset> suite = BuildSuite(options);
  ThreadPool pool(options.num_threads);
  const PerfSample before_ngram = perf.Read();
  const PanelSummary ngram =
      RunPanel(suite, MatchingMode::kNgram, &pool, "N-gram row matching");
  const PerfSample before_golden = perf.Read();
  const PanelSummary golden =
      RunPanel(suite, MatchingMode::kGolden, &pool, "Golden row matching");
  const PerfSample ngram_perf = before_golden.Since(before_ngram);
  const PerfSample golden_perf = perf.Read().Since(before_golden);

  const StorageMetrics storage = MeasureStorage(suite);
  PrintStorageSummary(storage);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"benchmark\": \"bench_table2\",\n"
        "  \"threads\": %d,\n"
        "  \"scale\": %.3f,\n"
        "  \"ngram_mean_top_cov\": %.6f,\n"
        "  \"ngram_mean_coverage\": %.6f,\n"
        "  \"ngram_seconds\": %.6f,\n"
        "  \"golden_mean_top_cov\": %.6f,\n"
        "  \"golden_mean_coverage\": %.6f,\n"
        "  \"golden_seconds\": %.6f,\n",
        ResolveNumThreads(options.num_threads), options.scale,
        ngram.mean_top_cov, ngram.mean_coverage, ngram.seconds,
        golden.mean_top_cov, golden.mean_coverage, golden.seconds);
    std::fprintf(f,
                 "  \"simd_level\": \"%s\",\n"
                 "  \"simd_best_level\": \"%s\",\n"
                 "  \"perf_counters_available\": %s,\n",
                 simd::SimdLevelName(simd::ActiveLevel()),
                 simd::SimdLevelName(simd::BestSupportedLevel()),
                 perf.available() ? "true" : "false");
    WritePerfPhaseJson(f, "ngram", ngram_perf);
    WritePerfPhaseJson(f, "golden", golden_perf);
    WriteStorageJsonTail(f, storage);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tj

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return tj::Run(json_path);
}
