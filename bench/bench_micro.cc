// Microbenchmarks (google-benchmark) for the hot paths: unit evaluation,
// LCP-table construction, skeleton enumeration, candidate generation, the
// coverage inner loop, and the n-gram inverted index.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/generator.h"
#include "core/skeleton.h"
#include "datagen/synth.h"
#include "index/inverted_index.h"
#include "text/edit_distance.h"
#include "text/lcp.h"

namespace tj {
namespace {

const char kSource[] = "prus-czarnecki, andrzej michal 1974-03-06";
const char kTarget[] = "a prus-czarnecki (1974)";

void BM_UnitEvalSubstr(benchmark::State& state) {
  const Unit u = Unit::MakeSubstr(2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.Eval(kSource));
  }
}
BENCHMARK(BM_UnitEvalSubstr);

void BM_UnitEvalSplit(benchmark::State& state) {
  const Unit u = Unit::MakeSplit(' ', 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.Eval(kSource));
  }
}
BENCHMARK(BM_UnitEvalSplit);

void BM_UnitEvalSplitSubstr(benchmark::State& state) {
  const Unit u = Unit::MakeSplitSubstr(' ', 1, 0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.Eval(kSource));
  }
}
BENCHMARK(BM_UnitEvalSplitSubstr);

void BM_UnitEvalTwoCharSplitSubstr(benchmark::State& state) {
  const Unit u = Unit::MakeTwoCharSplitSubstr(',', '-', 0, 0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.Eval(kSource));
  }
}
BENCHMARK(BM_UnitEvalTwoCharSplitSubstr);

void BM_LcpBuild(benchmark::State& state) {
  const std::string source(static_cast<size_t>(state.range(0)), 'x');
  std::string target = source;
  target += "abc";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcpTable::Build(source, target));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LcpBuild)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_SkeletonEnumeration(benchmark::State& state) {
  const LcpTable lcp = LcpTable::Build(kSource, kTarget);
  const DiscoveryOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateSkeletons(kTarget, lcp, options));
  }
}
BENCHMARK(BM_SkeletonEnumeration);

void BM_GenerateTransformationsForRow(benchmark::State& state) {
  const DiscoveryOptions options;
  for (auto _ : state) {
    UnitInterner units;
    TransformationStore store;
    DiscoveryStats stats;
    GenerateTransformationsForRow(kSource, kTarget, options, &units, &store,
                                  &stats);
    benchmark::DoNotOptimize(store.size());
  }
}
BENCHMARK(BM_GenerateTransformationsForRow);

void BM_DiscoveryEndToEnd(benchmark::State& state) {
  const SynthDataset ds =
      GenerateSynth(SynthN(static_cast<size_t>(state.range(0)), 5));
  const std::vector<ExamplePair> rows = MakeExamplePairs(
      ds.pair.SourceColumn(), ds.pair.TargetColumn(), ds.pair.golden.pairs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiscoverTransformations(rows, DiscoveryOptions()));
  }
}
BENCHMARK(BM_DiscoveryEndToEnd)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const SynthDataset ds = GenerateSynth(SynthN(100, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NgramInvertedIndex::Build(ds.pair.SourceColumn(), 4, 20, true));
  }
  state.SetLabel("100 rows, n=4..20");
}
BENCHMARK(BM_InvertedIndexBuild)->Unit(benchmark::kMillisecond);

void BM_InvertedIndexLookup(benchmark::State& state) {
  const SynthDataset ds = GenerateSynth(SynthN(100, 3));
  const NgramInvertedIndex index =
      NgramInvertedIndex::Build(ds.pair.SourceColumn(), 4, 20, true);
  const std::string probe(ds.pair.SourceColumn().Get(0).substr(0, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(probe));
  }
}
BENCHMARK(BM_InvertedIndexLookup);

void BM_EditDistance(benchmark::State& state) {
  const std::string a(static_cast<size_t>(state.range(0)), 'a');
  std::string b = a;
  b[b.size() / 2] = 'x';
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Range(16, 256);

}  // namespace
}  // namespace tj

BENCHMARK_MAIN();
