// §5.3 — Performance under sampling: analytic discovery probabilities vs an
// empirical check.
//
// Analytic: for a transformation with coverage fraction q and sample size s,
//   P(discovered) = 1 - P0 - P1,  P0 = (1-q)^s,  P1 = s q (1-q)^(s-1)
// (at least two supporting rows must be sampled). Auto-Join instead needs a
// whole subset covered: P(subset covered) = q^s, so the expected number of
// subsets needed is 1/q^s. The paper's example: q = 0.05, s = 100 gives
// 0.96 for us; Auto-Join with s = 2 needs ~400 subsets.
//
// Empirical: Synth tables with 3 ground-truth rules; discovery runs on a
// random sample and we count how many rules the covering set recovers.

#include <cmath>
#include <cstdio>
#include <vector>

#include "benchlib/report.h"
#include "benchlib/suite.h"
#include "common/rng.h"
#include "core/discovery.h"
#include "datagen/synth.h"

namespace tj {
namespace {

double AnalyticDiscoveryProbability(double q, double s) {
  const double p0 = std::pow(1.0 - q, s);
  const double p1 = s * q * std::pow(1.0 - q, s - 1.0);
  return 1.0 - p0 - p1;
}

void RunAnalytic() {
  std::printf("-- Analytic: P(discover) = 1 - P0 - P1 --\n");
  TablePrinter table({"coverage q", "sample s", "P(ours)",
                      "AJ subsets for E=1 (s=2)"});
  for (double q : {0.05, 0.10, 0.25, 0.50}) {
    for (double s : {20.0, 50.0, 100.0}) {
      table.AddRow({FormatDouble(q, 2), FormatDouble(s, 0),
                    FormatDouble(AnalyticDiscoveryProbability(q, s), 3),
                    FormatDouble(1.0 / (q * q), 0)});
    }
  }
  table.Print();
  std::printf("(paper's example: q=0.05, s=100 -> 0.96; Auto-Join needs ~400 "
              "subsets)\n\n");
}

void RunEmpirical() {
  std::printf("-- Empirical: rules recovered from a sample (3 rules/table) "
              "--\n");
  const SuiteOptions suite_options = SuiteOptionsFromEnv();
  const auto base_rows = static_cast<size_t>(400 * suite_options.scale);
  const size_t total_rows = base_rows < 40 ? 40 : base_rows;
  TablePrinter table({"sample size", "rules covered (of 3)",
                      "sample coverage", "full coverage"});
  for (size_t sample : {20, 50, 100, 200}) {
    double rules_sum = 0.0;
    double sample_cov_sum = 0.0;
    double full_cov_sum = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      SynthOptions options = SynthN(total_rows, 31 + trial * 13);
      const SynthDataset ds = GenerateSynth(options);
      std::vector<ExamplePair> all = MakeExamplePairs(
          ds.pair.SourceColumn(), ds.pair.TargetColumn(),
          ds.pair.golden.pairs());
      // Uniform sample without replacement.
      Rng rng(0xabcdULL + trial);
      std::vector<uint32_t> idx(all.size());
      for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
      rng.Shuffle(&idx);
      idx.resize(std::min(sample, idx.size()));
      std::vector<ExamplePair> sampled;
      for (uint32_t i : idx) sampled.push_back(all[i]);

      const DiscoveryResult result =
          DiscoverTransformations(sampled, DiscoveryOptions());
      sample_cov_sum += result.CoverSetCoverageFraction();

      // Apply the discovered covering set to the full input: how many rows
      // and how many ground-truth rules does it explain?
      size_t covered = 0;
      std::vector<bool> rule_hit(ds.transformations.size(), false);
      for (size_t r = 0; r < all.size(); ++r) {
        for (const auto& ranked : result.cover.selected) {
          if (result.store.Get(ranked.id)
                  .Covers(all[r].source, all[r].target, result.units)) {
            ++covered;
            rule_hit[ds.row_rule[r]] = true;
            break;
          }
        }
      }
      full_cov_sum +=
          static_cast<double>(covered) / static_cast<double>(all.size());
      for (bool hit : rule_hit) rules_sum += hit ? 1.0 : 0.0;
    }
    table.AddRow({FormatDouble(static_cast<double>(sample), 0),
                  FormatDouble(rules_sum / trials, 2),
                  FormatDouble(sample_cov_sum / trials, 2),
                  FormatDouble(full_cov_sum / trials, 2)});
  }
  table.Print();
  std::printf("(shape: even small samples recover all rules and generalize "
              "to the full input)\n\n");
}

}  // namespace
}  // namespace tj

int main() {
  std::printf("== Section 5.3: Performance under sampling ==\n\n");
  tj::RunAnalytic();
  tj::RunEmpirical();
  return 0;
}
